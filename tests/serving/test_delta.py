"""Tests for the delta artifact format: publish, merge, chain-apply.

The acceptance pins of the incremental-publish pipeline live here:

* **chain-apply equivalence** — ``gen-0`` plus N applied deltas must be
  *content-hash-identical* to a full compile at ``gen-N``, so a server
  that only ever saw deltas serves exactly what a freshly compiled
  artifact would serve;
* **no stale postings** — entries removed by a refresh must disappear
  from the applied artifact's exact and token indexes (a stale posting is
  silent corruption: the matcher would keep resolving a synonym the miner
  retracted);
* **refused mismatches** — a delta applied to the wrong base, a corrupted
  sidecar, or a divergent merge result must raise, never serve.
"""

import pytest

from repro.clicklog.log import ClickLog, SearchLog
from repro.clicklog.records import ClickRecord
from repro.core.config import MinerConfig
from repro.core.incremental import IncrementalSynonymMiner
from repro.matching.dictionary import DictionaryEntry, SynonymDictionary
from repro.serving.artifact import (
    SynonymArtifact,
    compile_dictionary,
    dedupe_entries,
    state_hash,
)
from repro.serving.delta import (
    DELTA_KIND,
    DictionaryDelta,
    apply_delta,
    delta_path_for,
    diff_delta,
    write_delta,
)
from repro.simulation.catalog import Entity, EntityCatalog
from repro.storage.artifact import ArtifactError, read_artifact, write_artifact

BASE_ENTRIES = [
    DictionaryEntry("alpha product", "e1", "canonical"),
    DictionaryEntry("alfa", "e1", "mined", 10.0),
    DictionaryEntry("beta gadget", "e2", "canonical"),
    DictionaryEntry("beta", "e2", "mined", 5.0),
]

BASE_CLICKS = [("alfa", "https://a.example", 10), ("beta", "https://b.example", 5)]


@pytest.fixture()
def base_path(tmp_path):
    path = tmp_path / "dict.synart"
    compile_dictionary(
        SynonymDictionary(BASE_ENTRIES),
        path,
        version="gen-1",
        click_log=ClickLog.from_tuples(BASE_CLICKS),
    )
    return path


@pytest.fixture()
def base(base_path):
    return SynonymArtifact.load(base_path)


def _new_dictionary():
    """The base with e1 shrunk (alfa retracted, alef added) and e3 new."""
    return SynonymDictionary(
        [
            DictionaryEntry("alpha product", "e1", "canonical"),
            DictionaryEntry("alef", "e1", "mined", 3.0),
            DictionaryEntry("beta gadget", "e2", "canonical"),
            DictionaryEntry("beta", "e2", "mined", 5.0),
            DictionaryEntry("gamma widget", "e3", "canonical"),
        ]
    )


def _new_click_log():
    return ClickLog.from_tuples(
        BASE_CLICKS + [("alef", "https://a.example", 3), ("beta", "https://c.example", 2)]
    )


class TestDiffAndRoundTrip:
    def test_delta_fields_survive_round_trip(self, base, tmp_path):
        sidecar = tmp_path / "d.delta"
        manifest = diff_delta(
            base, _new_dictionary(), sidecar, version="gen-2",
            click_log=_new_click_log(),
        )
        assert manifest.kind == DELTA_KIND
        delta = DictionaryDelta.load(sidecar)
        assert delta.version == "gen-2"
        assert delta.base_version == "gen-1"
        assert delta.base_state_hash == base.state_hash
        assert delta.base_content_hash == base.manifest.content_hash
        changed = dict(delta.changed)
        # e1 changed (alfa -> alef), e3 appeared; e2's entries are
        # untouched but its prior moved, so it rides in prior_updates only.
        assert set(changed) == {"e1", "e3"}
        assert [t[0] for t in changed["e1"]] == ["alpha product", "alef"]
        assert delta.removed == []
        assert delta.prior_updates == {"e1": 3.0, "e2": 7.0, "e3": 0.0}

    def test_removed_entity_recorded(self, base, tmp_path):
        only_e1 = SynonymDictionary(BASE_ENTRIES[:2])
        sidecar = tmp_path / "d.delta"
        diff_delta(
            base, only_e1, sidecar, version="gen-2",
            click_log=ClickLog.from_tuples(BASE_CLICKS),
        )
        delta = DictionaryDelta.load(sidecar)
        assert delta.removed == ["e2"]
        assert delta.changed == []
        applied = apply_delta(base, delta)
        assert "beta" not in applied
        assert applied.priors() == {"e1": 10.0}

    def test_identical_state_yields_empty_delta(self, base, tmp_path):
        sidecar = tmp_path / "d.delta"
        manifest = diff_delta(
            base, SynonymDictionary(BASE_ENTRIES), sidecar, version="gen-2",
            click_log=ClickLog.from_tuples(BASE_CLICKS),
        )
        assert manifest.counts["changed_entities"] == 0
        assert manifest.counts["removed_entities"] == 0
        applied = apply_delta(base, DictionaryDelta.load(sidecar))
        assert applied.manifest.content_hash == base.manifest.content_hash

    def test_priors_source_must_match_base(self, base, tmp_path):
        with pytest.raises(ArtifactError, match="priors"):
            diff_delta(base, _new_dictionary(), tmp_path / "d.delta", version="x")

    def test_base_without_state_hash_refused(self, base_path, tmp_path):
        # Rewrite the base under a pre-delta manifest (no state_hash), as
        # a PR 2/3 compiler would have produced it.
        manifest, blocks = read_artifact(base_path)
        legacy_extra = {
            key: value for key, value in manifest.extra.items() if key != "state_hash"
        }
        legacy = tmp_path / "legacy.synart"
        write_artifact(
            legacy,
            {name: bytes(block) for name, block in blocks.items()},
            kind=manifest.kind,
            version=manifest.version,
            counts=manifest.counts,
            extra=legacy_extra,
        )
        old = SynonymArtifact.load(legacy)
        assert old.state_hash == ""
        with pytest.raises(ArtifactError, match="predates delta support"):
            diff_delta(
                old, _new_dictionary(), tmp_path / "d.delta", version="x",
                click_log=_new_click_log(),
            )


class TestApply:
    @pytest.fixture()
    def delta(self, base, tmp_path):
        sidecar = tmp_path / "d.delta"
        diff_delta(
            base, _new_dictionary(), sidecar, version="gen-2",
            click_log=_new_click_log(),
        )
        return DictionaryDelta.load(sidecar)

    def test_applied_equals_direct_compile(self, base, delta, tmp_path):
        applied = apply_delta(base, delta)
        reference = compile_dictionary(
            _new_dictionary(), tmp_path / "ref.synart", version="gen-2",
            click_log=_new_click_log(),
        )
        assert applied.manifest.content_hash == reference.content_hash
        assert applied.manifest.extra["state_hash"] == reference.extra["state_hash"]
        assert applied.manifest.version == "gen-2"

    def test_stale_postings_dropped(self, base, delta):
        """The retracted synonym leaves every index, not just the entries."""
        assert base.entities_for("alfa") == {"e1"}
        assert "alfa" in base.strings_containing_token("alfa")
        applied = apply_delta(base, delta)
        assert applied.lookup("alfa") == []
        assert "alfa" not in applied
        assert applied.strings_containing_token("alfa") == set()
        assert "alfa" not in applied.strings_for_entity("e1")
        assert applied.entities_for("alef") == {"e1"}

    def test_apply_writes_full_artifact_file(self, base, delta, tmp_path):
        output = tmp_path / "applied.synart"
        applied = apply_delta(base, delta, output_path=output)
        loaded = SynonymArtifact.load(output)
        assert loaded.manifest.content_hash == applied.manifest.content_hash
        assert list(loaded) == list(applied)
        assert loaded.priors() == applied.priors()

    def test_wrong_base_refused(self, delta, tmp_path):
        other = tmp_path / "other.synart"
        compile_dictionary(
            SynonymDictionary([DictionaryEntry("unrelated", "e9")]),
            other,
            version="gen-1",
            click_log=ClickLog(),
        )
        with pytest.raises(ArtifactError, match="base mismatch"):
            apply_delta(SynonymArtifact.load(other), delta)

    def test_applying_twice_refused(self, base, delta):
        applied = apply_delta(base, delta)
        with pytest.raises(ArtifactError, match="base mismatch"):
            apply_delta(applied, delta)

    def test_corrupted_delta_refused(self, base, tmp_path):
        sidecar = tmp_path / "d.delta"
        diff_delta(
            base, _new_dictionary(), sidecar, version="gen-2",
            click_log=_new_click_log(),
        )
        data = bytearray(sidecar.read_bytes())
        data[-2] ^= 0x7F
        sidecar.write_bytes(bytes(data))
        with pytest.raises(ArtifactError, match="hash"):
            DictionaryDelta.load(sidecar)

    def test_artifact_apply_delta_method(self, base, delta):
        assert base.apply_delta(delta).entities_for("gamma widget") == {"e3"}


class TestWriteDeltaValidation:
    def test_changed_and_removed_must_be_disjoint(self, tmp_path):
        with pytest.raises(ValueError, match="both changed and removed"):
            write_delta(
                tmp_path / "d.delta",
                version="v", base_version="b", base_state_hash="s",
                target_state_hash="t",
                changed=[("e1", [("text", "e1", "mined", 1.0)])],
                removed=["e1"],
                prior_updates=None,
            )

    def test_base_state_hash_required(self, tmp_path):
        with pytest.raises(ValueError, match="base_state_hash"):
            write_delta(
                tmp_path / "d.delta",
                version="v", base_version="b", base_state_hash="",
                target_state_hash="t", changed=[], removed=[], prior_updates=None,
            )

    def test_full_loader_refuses_delta_kind(self, base, tmp_path):
        sidecar = tmp_path / "d.delta"
        diff_delta(
            base, _new_dictionary(), sidecar, version="gen-2",
            click_log=_new_click_log(),
        )
        with pytest.raises(ArtifactError, match="kind"):
            SynonymArtifact.load(sidecar)


def _single_entity_miner():
    """One tracked entity whose only synonym can be retracted by traffic.

    ``alfa`` clicks the entity's sole surrogate 10 times (ICR 1.0); later
    off-surrogate clicks dilute its ICR below the threshold, so a refresh
    drops it — the shape of the stale-postings regression.
    """
    search = SearchLog.from_tuples([("alpha product", "https://e.example/alpha", 1)])
    clicks = ClickLog.from_tuples([("alfa", "https://e.example/alpha", 10)])
    config = MinerConfig(surrogate_k=5, ipc_threshold=1, icr_threshold=0.5)
    miner = IncrementalSynonymMiner(search_log=search, click_log=clicks, config=config)
    catalog = EntityCatalog(
        "test", [Entity(entity_id="e-alpha", canonical_name="alpha product", domain="test")]
    )
    return miner, catalog


class TestIncrementalDeltaPublish:
    def test_delta_requires_published_base(self, tmp_path):
        miner, catalog = _single_entity_miner()
        miner.track(["alpha product"])
        miner.refresh()
        with pytest.raises(ValueError, match="publish a full artifact"):
            miner.publish(catalog, tmp_path / "dict.synart", delta=True)

    def test_publish_settings_must_match_base(self, tmp_path):
        miner, catalog = _single_entity_miner()
        miner.track(["alpha product"])
        miner.refresh()
        path = tmp_path / "dict.synart"
        miner.publish(catalog, path)
        with pytest.raises(ValueError, match="include_canonical"):
            miner.publish(catalog, path, delta=True, include_canonical=False)
        with pytest.raises(ValueError, match="include_priors"):
            miner.publish(catalog, path, delta=True, include_priors=False)

    def test_refresh_retraction_drops_postings_full_and_delta(self, tmp_path):
        """A synonym the miner retracts vanishes from both publish paths."""
        miner, catalog = _single_entity_miner()
        miner.track(["alpha product"])
        miner.refresh()
        path = tmp_path / "dict.synart"
        miner.publish(catalog, path)
        base = SynonymArtifact.load(path)
        assert base.entities_for("alfa") == {"e-alpha"}

        # Dilute alfa's ICR below the threshold: the refresh retracts it.
        miner.ingest_clicks([ClickRecord("alfa", "https://other.example", 90)])
        assert miner.refresh() == ["alpha product"]
        assert miner.result["alpha product"].synonyms == []

        # Full republish drops it...
        full_path = tmp_path / "full.synart"
        dictionary = SynonymDictionary.from_mining_result(miner.result, catalog)
        assert "alfa" not in dictionary

        # ...and so does the delta applied onto the old base.
        manifest = miner.publish(catalog, path, delta=True)
        applied = apply_delta(base, DictionaryDelta.load(delta_path_for(path)))
        assert applied.lookup("alfa") == []
        assert applied.strings_containing_token("alfa") == set()
        compile_dictionary(
            dictionary, full_path, version=manifest.version,
            config_fingerprint=miner.config.fingerprint(), click_log=miner.click_log,
        )
        assert applied.manifest.content_hash == (
            SynonymArtifact.load(full_path).manifest.content_hash
        )

    def test_full_publish_removes_stale_sidecar(self, tmp_path):
        miner, catalog = _single_entity_miner()
        miner.track(["alpha product"])
        miner.refresh()
        path = tmp_path / "dict.synart"
        miner.publish(catalog, path)
        miner.ingest_clicks([ClickRecord("alfa", "https://e.example/alpha", 1)])
        miner.refresh()
        miner.publish(catalog, path, delta=True)
        assert delta_path_for(path).exists()
        miner.publish(catalog, path)
        assert not delta_path_for(path).exists()

    def test_catalog_delisting_removes_entity_via_delta(self, tmp_path):
        """A delisted entity leaves the delta even with no new traffic."""
        search = SearchLog.from_tuples(
            [
                ("alpha product", "https://e.example/alpha", 1),
                ("beta gadget", "https://e.example/beta", 1),
            ]
        )
        clicks = ClickLog.from_tuples(
            [
                ("alfa", "https://e.example/alpha", 10),
                ("betta", "https://e.example/beta", 8),
            ]
        )
        config = MinerConfig(surrogate_k=5, ipc_threshold=1, icr_threshold=0.5)
        miner = IncrementalSynonymMiner(
            search_log=search, click_log=clicks, config=config
        )
        alpha = Entity(entity_id="e-alpha", canonical_name="alpha product", domain="t")
        beta = Entity(entity_id="e-beta", canonical_name="beta gadget", domain="t")
        catalog = EntityCatalog("t", [alpha, beta])
        miner.track(["alpha product", "beta gadget"])
        miner.refresh()
        path = tmp_path / "dict.synart"
        miner.publish(catalog, path)
        base = SynonymArtifact.load(path)
        assert base.entities_for("betta") == {"e-beta"}

        # Delist beta: nothing is dirty, yet the next delta must drop it
        # exactly as a full compile against the smaller catalog would.
        smaller = EntityCatalog("t", [alpha])
        manifest = miner.publish(smaller, path, delta=True)
        delta = DictionaryDelta.load(delta_path_for(path))
        assert delta.removed == ["e-beta"]
        assert delta.changed == []
        applied = apply_delta(base, delta)
        assert applied.lookup("betta") == []
        assert applied.strings_containing_token("betta") == set()
        reference = compile_dictionary(
            SynonymDictionary.from_mining_result(miner.result, smaller),
            tmp_path / "ref.synart",
            version=manifest.version,
            config_fingerprint=miner.config.fingerprint(),
            click_log=miner.click_log,
        )
        assert applied.manifest.content_hash == reference.content_hash

    def test_prior_only_delta_for_untouched_entity(self, tmp_path):
        """Clicks on an unchanged entity's string update its prior only."""
        miner, catalog = _single_entity_miner()
        miner.track(["alpha product"])
        miner.refresh()
        path = tmp_path / "dict.synart"
        miner.publish(catalog, path)
        base = SynonymArtifact.load(path)
        assert base.priors() == {"e-alpha": 10.0}

        # "alpha product" is a dictionary string of e-alpha but not one of
        # its candidate queries, and the clicked URL is no surrogate: the
        # entity is never marked dirty, yet its prior moves.
        miner.ingest_clicks([ClickRecord("alpha product", "https://x.example", 4)])
        assert miner.refresh() == []
        miner.publish(catalog, path, delta=True)
        delta = DictionaryDelta.load(delta_path_for(path))
        assert delta.changed == []
        assert delta.prior_updates == {"e-alpha": 14.0}
        applied = apply_delta(base, delta)
        assert applied.priors() == {"e-alpha": 14.0}
        assert list(applied) == list(base)


class _ToyChain:
    """An incremental miner over the toy world plus a full-compile oracle."""

    def __init__(self, world):
        self.world = world
        self.miner = IncrementalSynonymMiner(
            search_log=SearchLog(world.search_log.iter_records()),
            click_log=ClickLog(world.click_log.iter_records()),
            config=MinerConfig.paper_default(),
        )
        self.values = world.canonical_queries()
        self.miner.track(self.values)
        self.miner.refresh()

    def full_compile(self, path, version):
        """What a from-scratch publish of the current state would write."""
        dictionary = SynonymDictionary.from_mining_result(
            self.miner.result, self.world.catalog
        )
        return compile_dictionary(
            dictionary, path, version=version,
            config_fingerprint=self.miner.config.fingerprint(),
            click_log=self.miner.click_log,
        )

    def perturb(self, index, clicks=25):
        value = self.values[index]
        url = self.miner.search_log.top_urls(value, k=1)[0]
        self.miner.ingest_clicks([ClickRecord(value, url, clicks)])
        return self.miner.refresh()


class TestChainApplyEquivalence:
    """gen-0 + N applied deltas ≡ full compile at gen-N, content hash equal."""

    def test_two_delta_chain_matches_full_compiles(self, toy_world, tmp_path):
        chain = _ToyChain(toy_world)
        path = tmp_path / "dict.synart"
        chain.miner.publish(toy_world.catalog, path)
        artifact = SynonymArtifact.load(path)

        for round_index in (0, 1):
            assert chain.perturb(round_index)  # at least one entity re-mined
            manifest = chain.miner.publish(toy_world.catalog, path, delta=True)
            delta = DictionaryDelta.load(delta_path_for(path))
            artifact = apply_delta(artifact, delta)
            reference = chain.full_compile(
                tmp_path / f"ref-{round_index}.synart", manifest.version
            )
            assert artifact.manifest.content_hash == reference.content_hash, (
                f"chain diverged from full compile at round {round_index}"
            )
            assert artifact.manifest.version == reference.version

    def test_delta_skips_chain_link_refused(self, toy_world, tmp_path):
        chain = _ToyChain(toy_world)
        path = tmp_path / "dict.synart"
        chain.miner.publish(toy_world.catalog, path)
        gen0 = SynonymArtifact.load(path)

        chain.perturb(0)
        chain.miner.publish(toy_world.catalog, path, delta=True)
        delta1 = DictionaryDelta.load(delta_path_for(path))
        chain.perturb(1)
        chain.miner.publish(toy_world.catalog, path, delta=True)
        delta2 = DictionaryDelta.load(delta_path_for(path))

        # Applying out of order must fail; in order must succeed.
        with pytest.raises(ArtifactError, match="base mismatch"):
            apply_delta(gen0, delta2)
        chained = apply_delta(apply_delta(gen0, delta1), delta2)
        assert chained.manifest.version == delta2.version
