"""mmap-mode serving: equivalence, ownership, and hot-swap/fold behavior.

The mmap read path must be invisible to callers: identical match results,
identical iteration order, identical priors and state hash — pinned here
against the heap path.  On top of that the ownership rules are pinned
(deterministic close, refcount fallback) and the :class:`MatchService`
"delta = republish + remap" fold behavior: a sidecar is folded to
``<artifact>.applied`` and remapped, a restart re-folds, and a full
republish sweeps the stale fold file.
"""

import pytest

from repro.clicklog.log import ClickLog
from repro.matching.dictionary import DictionaryEntry
from repro.server.daemon import match_payload
from repro.serving.artifact import SynonymArtifact, compile_dictionary
from repro.serving.delta import delta_path_for, diff_delta, fold_path_for
from repro.serving.service import MatchService
from repro.storage.artifact import ArtifactError, ArtifactMapping, read_artifact

ENTRIES = [
    DictionaryEntry("indiana jones and the kingdom of the crystal skull", "m1", "canonical"),
    DictionaryEntry("indy 4", "m1", "mined", 120.0),
    DictionaryEntry("indiana jones 4", "m1", "mined", 80.0),
    DictionaryEntry("madagascar escape 2 africa", "m2", "canonical"),
    DictionaryEntry("madagascar 2", "m2", "mined", 200.0),
    DictionaryEntry("shared name", "m1", "mined", 5.0),
    DictionaryEntry("shared name", "m2", "mined", 9.0),
]

QUERIES = [
    "indy 4",
    "indiana jones 4 trailer",
    "madagascar 2",
    "shared name",
    "indiana jnoes 4",  # fuzzy fallback
    "no such movie at all",
]

CLICKS = ClickLog.from_tuples(
    [
        ("indy 4", "https://a.example", 120),
        ("madagascar 2", "https://b.example", 200),
        ("shared name", "https://c.example", 9),
    ]
)


@pytest.fixture()
def artifact_path(tmp_path):
    path = tmp_path / "dict.synart"
    compile_dictionary(ENTRIES, path, version="gen-1", click_log=CLICKS)
    return path


class TestEquivalence:
    def test_iteration_and_lookup_identical(self, artifact_path):
        heap = SynonymArtifact.load(artifact_path)
        with SynonymArtifact.load(artifact_path, mmap=True) as mapped:
            assert mapped.is_mapped and not heap.is_mapped
            assert list(mapped) == list(heap)
            assert len(mapped) == len(heap)
            for entry in heap:
                assert mapped.lookup(entry.text) == heap.lookup(entry.text)
            assert mapped.priors() == heap.priors()
            assert mapped.state_hash == heap.state_hash
            assert mapped.max_entry_tokens == heap.max_entry_tokens
            assert mapped.strings_for_entity("m1") == heap.strings_for_entity("m1")
            assert mapped.strings_containing_token("madagascar") == (
                heap.strings_containing_token("madagascar")
            )

    def test_match_results_byte_identical(self, artifact_path):
        heap = MatchService(artifact_path)
        mapped = MatchService(artifact_path, mmap=True)
        for query in QUERIES:
            assert match_payload(mapped.match(query)) == match_payload(heap.match(query))
            assert mapped.resolve(query) == heap.resolve(query)
        assert mapped.close() is True

    def test_entry_tuples_identical(self, artifact_path):
        heap = SynonymArtifact.load(artifact_path)
        mapped = SynonymArtifact.load(artifact_path, mmap=True)
        assert list(mapped.entry_tuples()) == list(heap.entry_tuples())
        mapped.close()


class TestOwnership:
    def test_close_is_deterministic_after_use(self, artifact_path):
        artifact = SynonymArtifact.load(artifact_path, mmap=True)
        artifact.lookup("indy 4")
        list(artifact)
        artifact.priors()
        assert artifact.closed is False
        assert artifact.close() is True
        assert artifact.closed is True

    def test_close_idempotent(self, artifact_path):
        artifact = SynonymArtifact.load(artifact_path, mmap=True)
        assert artifact.close() is True
        assert artifact.close() is True

    def test_heap_artifact_close_is_noop(self, artifact_path):
        artifact = SynonymArtifact.load(artifact_path)
        assert artifact.is_mapped is False
        assert artifact.close() is True
        assert artifact.closed is False
        assert artifact.lookup("indy 4")  # still serving

    def test_closed_mapping_refuses_block_access(self, artifact_path):
        _manifest, mapping = read_artifact(artifact_path, mmap=True)
        assert isinstance(mapping, ArtifactMapping)
        assert set(mapping) == set(_manifest.blocks)
        mapping.close()
        with pytest.raises(ArtifactError, match="closed"):
            mapping["strings.blob"]

    def test_live_outside_view_defers_close(self, artifact_path):
        _manifest, mapping = read_artifact(artifact_path, mmap=True)
        outside = mapping["strings.blob"][0:4]  # an in-flight reader's slice
        assert mapping.close() is False  # deferred to refcounting
        assert mapping.closed is True  # but closed for new access
        outside.release()

    def test_mapping_context_manager(self, artifact_path):
        with read_artifact(artifact_path, mmap=True)[1] as mapping:
            assert mapping.size == artifact_path.stat().st_size
        assert mapping.closed


class TestServiceMmap:
    def test_requires_path_backed_service(self, artifact_path):
        loaded = SynonymArtifact.load(artifact_path)
        with pytest.raises(ValueError, match="path"):
            MatchService(loaded, mmap=True)

    def test_full_republish_hot_swap(self, artifact_path):
        service = MatchService(artifact_path, mmap=True)
        assert service.artifact.is_mapped
        new = ENTRIES + [DictionaryEntry("crystal skull movie", "m1", "mined", 7.0)]
        compile_dictionary(new, artifact_path, version="gen-2", click_log=CLICKS)
        assert service.maybe_reload() is True
        assert service.manifest.version == "gen-2"
        assert service.artifact.is_mapped
        assert service.match("crystal skull movie").matched
        service.close()

    def test_delta_folds_to_applied_file(self, artifact_path):
        service = MatchService(artifact_path, mmap=True)
        base = SynonymArtifact.load(artifact_path)
        new = ENTRIES + [DictionaryEntry("kingdom of the crystal skull", "m1", "mined", 6.0)]
        diff_delta(
            base, new, delta_path_for(artifact_path), version="gen-2", click_log=CLICKS
        )
        assert service.maybe_reload() is True
        stats = service.stats
        assert stats.deltas_applied == 1
        assert stats.reloads == 0  # fold, not a full cold reload
        assert fold_path_for(artifact_path).exists()
        assert delta_path_for(artifact_path).exists()  # sidecar kept for restarts
        assert service.artifact.is_mapped
        assert service.manifest.version == "gen-2"
        assert service.match("kingdom of the crystal skull").matched
        # The fold file is itself a valid full artifact, identical in state.
        folded = SynonymArtifact.load(fold_path_for(artifact_path))
        assert folded.state_hash == service.artifact.state_hash
        service.close()

    def test_fold_matches_heap_delta_apply(self, artifact_path):
        heap = MatchService(artifact_path)
        mapped = MatchService(artifact_path, mmap=True)
        base = SynonymArtifact.load(artifact_path)
        new = ENTRIES + [DictionaryEntry("indy four", "m1", "mined", 4.0)]
        diff_delta(
            base, new, delta_path_for(artifact_path), version="gen-2", click_log=CLICKS
        )
        assert heap.maybe_reload() and mapped.maybe_reload()
        for query in QUERIES + ["indy four"]:
            assert match_payload(mapped.match(query)) == match_payload(heap.match(query))
        assert mapped.artifact.state_hash == heap.artifact.state_hash
        mapped.close()

    def test_restart_refolds_pending_sidecar(self, artifact_path):
        base = SynonymArtifact.load(artifact_path)
        new = ENTRIES + [DictionaryEntry("escape 2 africa", "m2", "mined", 3.0)]
        diff_delta(
            base, new, delta_path_for(artifact_path), version="gen-2", click_log=CLICKS
        )
        service = MatchService(artifact_path, mmap=True)  # fresh process restart
        assert service.manifest.version == "gen-2"
        assert service.match("escape 2 africa").matched
        assert service.artifact.is_mapped
        service.close()

    def test_full_republish_sweeps_stale_fold_file(self, artifact_path):
        service = MatchService(artifact_path, mmap=True)
        base = SynonymArtifact.load(artifact_path)
        new = ENTRIES + [DictionaryEntry("skull kingdom", "m1", "mined", 2.0)]
        diff_delta(
            base, new, delta_path_for(artifact_path), version="gen-2", click_log=CLICKS
        )
        assert service.maybe_reload() is True
        assert fold_path_for(artifact_path).exists()
        # Publisher ships gen-3 full and removes its consumed sidecar.
        compile_dictionary(new, artifact_path, version="gen-3", click_log=CLICKS)
        delta_path_for(artifact_path).unlink()
        assert service.maybe_reload() is True
        assert service.manifest.version == "gen-3"
        assert not fold_path_for(artifact_path).exists()
        service.close()

    def test_swap_under_held_snapshot_is_safe(self, artifact_path):
        # An in-flight request holds the old state while a swap happens:
        # the old mapping must stay readable until the reference drops.
        service = MatchService(artifact_path, mmap=True)
        old_artifact = service.artifact
        compile_dictionary(
            ENTRIES + [DictionaryEntry("brand new", "m2", "mined", 1.0)],
            artifact_path,
            version="gen-2",
            click_log=CLICKS,
        )
        assert service.maybe_reload() is True
        # Old state still fully readable after being swapped out.
        assert old_artifact.lookup("indy 4")
        assert "brand new" not in old_artifact
        assert service.match("brand new").matched
        service.close()

    def test_stats_payload_reports_mmap(self, artifact_path):
        from tests.conftest import daemon_server

        with daemon_server(artifact_path, watch_interval=0, mmap=True) as (_d, client):
            assert client.stats()["artifact"]["mmap"] is True
        with daemon_server(artifact_path, watch_interval=0) as (_d, client):
            assert client.stats()["artifact"]["mmap"] is False
