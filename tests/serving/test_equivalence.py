"""Equivalence pin: compiled-artifact matching ≡ in-memory dictionary.

The acceptance bar for the serving pipeline is that swapping
:class:`SynonymDictionary` for a compiled :class:`SynonymArtifact` (or the
:class:`MatchService` over it) changes *nothing* observable: every
:class:`EntityMatch` field is identical across the full simulated world,
for exact hits, fuzzy recoveries and misses alike.
"""

import pytest

from repro.clicklog.log import ClickLog, SearchLog
from repro.clicklog.records import ClickRecord
from repro.core.config import MinerConfig
from repro.core.incremental import IncrementalSynonymMiner
from repro.core.pipeline import SynonymMiner
from repro.matching.dictionary import SynonymDictionary
from repro.matching.matcher import QueryMatcher
from repro.serving.artifact import SynonymArtifact
from repro.serving.service import MatchService


@pytest.fixture(scope="module")
def mined_world(toy_world):
    miner = SynonymMiner(
        click_log=toy_world.click_log,
        search_log=toy_world.search_log,
        config=MinerConfig.paper_default(),
    )
    result = miner.mine(toy_world.canonical_queries())
    return miner, result


@pytest.fixture(scope="module")
def dictionary(mined_world, toy_world):
    _, result = mined_world
    return SynonymDictionary.from_mining_result(result, toy_world.catalog)


@pytest.fixture(scope="module")
def artifact(mined_world, toy_world, tmp_path_factory):
    miner, result = mined_world
    path = tmp_path_factory.mktemp("equivalence") / "world.synart"
    manifest = miner.publish(result, toy_world.catalog, path, version="eq-test")
    assert manifest.version == "eq-test"
    assert manifest.config_fingerprint == miner.config.fingerprint()
    return SynonymArtifact.load(path)


@pytest.fixture(scope="module")
def live_queries(toy_world):
    """Every query the world ever saw, plus adversarial extras."""
    queries = list(toy_world.canonical_queries())
    queries.extend(record.query for record in toy_world.search_log.iter_records())
    queries.extend(record.query for record in toy_world.click_log.iter_records())
    queries.extend(
        [
            "",
            "   ",
            "!!",
            "completely unrelated query",
            "quinn lyraa kingdm",  # misspelled: exercises the fuzzy path
            "THE KINGDOM!!",
        ]
    )
    # Deduplicate but keep order so failures are reproducible.
    return list(dict.fromkeys(queries))


class TestFullWorldEquivalence:
    def test_artifact_reproduces_dictionary_index(self, artifact, dictionary):
        assert len(artifact) == len(dictionary)
        assert list(artifact) == list(dictionary)
        assert artifact.max_entry_tokens == dictionary.max_entry_tokens

    def test_artifact_matching_identical(self, artifact, dictionary, live_queries):
        reference = QueryMatcher(dictionary)
        compiled = QueryMatcher(artifact)
        for query in live_queries:
            assert compiled.match(query) == reference.match(query), query

    def test_match_service_identical_cached_and_uncached(
        self, artifact, dictionary, live_queries
    ):
        reference = QueryMatcher(dictionary)
        service = MatchService(artifact)
        expected = [reference.match(query) for query in live_queries]
        assert service.match_many(live_queries) == expected  # cold cache
        assert service.match_many(live_queries) == expected  # warm cache
        assert service.stats.cache_hits > 0

    def test_fuzzy_disabled_still_identical(self, artifact, dictionary, live_queries):
        reference = QueryMatcher(dictionary, enable_fuzzy=False)
        compiled = QueryMatcher(artifact, enable_fuzzy=False)
        for query in live_queries:
            assert compiled.match(query) == reference.match(query), query

    def test_coverage_identical(self, artifact, dictionary, live_queries):
        assert QueryMatcher(artifact).coverage(live_queries) == pytest.approx(
            QueryMatcher(dictionary).coverage(live_queries)
        )


class TestIncrementalPublish:
    @staticmethod
    def _fresh_miner(toy_world):
        # The incremental miner ingests into its logs; clone them so the
        # session-scoped world stays pristine for other tests.
        return IncrementalSynonymMiner(
            search_log=SearchLog(toy_world.search_log.iter_records()),
            click_log=ClickLog(toy_world.click_log.iter_records()),
            config=MinerConfig.paper_default(),
        )

    def test_generation_stamped_into_manifest(self, toy_world, tmp_path):
        values = toy_world.canonical_queries()[:5]
        miner = self._fresh_miner(toy_world)
        miner.track(values)
        miner.refresh()
        assert miner.generation == 1

        path = tmp_path / "incremental.synart"
        manifest = miner.publish(toy_world.catalog, path)
        assert manifest.version == "gen-1"

        # Re-publishing after another refresh bumps the version; a service
        # watching the path hot-swaps to it without a restart.
        service = MatchService(path)
        assert service.manifest.version == "gen-1"
        url = toy_world.search_log.top_urls(values[0], k=1)[0]
        miner.ingest_clicks([ClickRecord(values[0], url, 5)])
        miner.refresh()
        miner.publish(toy_world.catalog, path)
        assert service.maybe_reload() is True
        assert service.manifest.version == "gen-2"

    def test_published_artifact_matches_in_memory_dictionary(self, toy_world, tmp_path):
        values = toy_world.canonical_queries()[:8]
        miner = self._fresh_miner(toy_world)
        miner.track(values)
        miner.refresh()
        path = tmp_path / "inc.synart"
        miner.publish(toy_world.catalog, path)

        dictionary = SynonymDictionary.from_mining_result(miner.result, toy_world.catalog)
        artifact = SynonymArtifact.load(path)
        reference = QueryMatcher(dictionary)
        compiled = QueryMatcher(artifact)
        for query in values + ["unknown query", ""]:
            assert compiled.match(query) == reference.match(query), query
