"""Thread-safety pins for :class:`MatchService`.

The daemon (:mod:`repro.server`) drives one service from many request
threads plus a watcher thread reloading mid-traffic.  Before the service
grew its lock, concurrent callers could lose counter increments and, worse,
corrupt the cache's ``OrderedDict`` (``move_to_end`` on a key evicted by a
racing ``popitem``).  These tests hammer exactly those interleavings:

* many threads matching a head-heavy query mix through a deliberately tiny
  LRU (constant eviction churn), with the exact query count pinned;
* the same traffic with ``reload()`` swapping states mid-flight — every
  result must still be field-for-field correct.
"""

import threading

import pytest

from repro.matching.dictionary import DictionaryEntry, SynonymDictionary
from repro.matching.matcher import QueryMatcher
from repro.serving.artifact import compile_dictionary
from repro.serving.service import MatchService

THREADS = 8
QUERIES_PER_THREAD = 120


@pytest.fixture()
def dictionary():
    return SynonymDictionary(
        [
            DictionaryEntry("indiana jones and the kingdom of the crystal skull", "m1", "canonical"),
            DictionaryEntry("indy 4", "m1", "mined", 120.0),
            DictionaryEntry("madagascar 2", "m2", "mined", 200.0),
            DictionaryEntry("shared name", "m1", "mined", 5.0),
            DictionaryEntry("shared name", "m2", "mined", 9.0),
        ]
    )


@pytest.fixture()
def artifact_path(dictionary, tmp_path):
    path = tmp_path / "dict.synart"
    compile_dictionary(dictionary, path, version="gen-1")
    return path


def _query_mix():
    """A head-heavy mix: repeats (cache hits), spread (evictions), misses."""
    mix = []
    for i in range(QUERIES_PER_THREAD):
        if i % 3 == 0:
            mix.append("indy 4")
        elif i % 3 == 1:
            mix.append(f"madagascar 2 showing {i % 7}")
        else:
            mix.append(f"unmatched filler {i}")
    return mix


def _hammer(service, *, threads=THREADS, errors=None):
    """Run the mix on *threads* threads; collect (query, result) pairs."""
    results = [[] for _ in range(threads)]
    errors = errors if errors is not None else []
    barrier = threading.Barrier(threads)

    def worker(slot):
        mix = _query_mix()
        try:
            barrier.wait(timeout=10)
            for query in mix:
                results[slot].append((query, service.match(query)))
        except Exception as exc:  # pragma: no cover - the failure we pin against
            errors.append(exc)

    pool = [threading.Thread(target=worker, args=(slot,)) for slot in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=30)
    return results, errors


class TestConcurrentMatching:
    def test_no_lost_counter_increments(self, artifact_path):
        # cache_size=4 forces constant eviction churn through the
        # OrderedDict — the exact structure the lock protects.
        service = MatchService(artifact_path, cache_size=4)
        _, errors = _hammer(service)
        assert errors == []
        stats = service.stats
        assert stats.queries == THREADS * QUERIES_PER_THREAD
        assert stats.cache_hits + stats.cache_misses == stats.queries

    def test_results_identical_to_serial_matcher(self, artifact_path, dictionary):
        service = MatchService(artifact_path, cache_size=8)
        results, errors = _hammer(service)
        assert errors == []
        reference = QueryMatcher(dictionary)
        expected = {query: reference.match(query) for query in _query_mix()}
        for per_thread in results:
            for query, match in per_thread:
                assert match == expected[query], query

    def test_reload_mid_traffic(self, artifact_path, dictionary):
        """Hot swap under load: same dictionary republished as gen-2/gen-3.

        Identical content means every result stays pinned to the serial
        matcher regardless of which state served it, while reload() still
        exercises the real swap path (fresh artifact, matcher and cache).
        """
        service = MatchService(artifact_path, cache_size=4)
        stop = threading.Event()
        errors: list = []

        def reloader():
            generation = 2
            try:
                while not stop.is_set():
                    compile_dictionary(dictionary, artifact_path, version=f"gen-{generation}")
                    service.reload()
                    generation += 1
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        swapper = threading.Thread(target=reloader)
        swapper.start()
        try:
            results, errors_out = _hammer(service, errors=errors)
        finally:
            stop.set()
            swapper.join(timeout=30)
        assert errors == []
        reference = QueryMatcher(dictionary)
        expected = {query: reference.match(query) for query in _query_mix()}
        for per_thread in results:
            for query, match in per_thread:
                assert match == expected[query], query
        stats = service.stats
        assert stats.queries == THREADS * QUERIES_PER_THREAD
        assert stats.reloads >= 1

    def test_concurrent_maybe_reload_swaps_exactly_once(self, artifact_path, dictionary):
        """One republish, many pollers: exactly one cold load happens.

        The stamp is re-checked under the reload lock, so the watcher
        thread and an admin reload straddling the same republish cannot
        both discard the warm cache and re-verify the artifact.
        """
        service = MatchService(artifact_path)
        compile_dictionary(dictionary, artifact_path, version="gen-2")
        outcomes = []
        barrier = threading.Barrier(6)

        def poller():
            barrier.wait(timeout=10)
            outcomes.append(service.maybe_reload())

        pool = [threading.Thread(target=poller) for _ in range(6)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=30)
        assert sum(outcomes) == 1, outcomes
        assert service.stats.reloads == 1
        assert service.manifest.version == "gen-2"

    def test_concurrent_resolve_consistent_state(self, artifact_path):
        """resolve() pairs match and ranking from one captured state."""
        service = MatchService(artifact_path, cache_size=8)
        errors: list = []
        rankings: list = []

        def worker():
            try:
                for _ in range(50):
                    match, ranked = service.resolve("shared name")
                    rankings.append((match.entity_ids, [r.entity_id for r in ranked]))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        pool = [threading.Thread(target=worker) for _ in range(4)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=30)
        assert errors == []
        for entity_ids, ranked_ids in rankings:
            assert entity_ids == frozenset({"m1", "m2"})
            assert sorted(ranked_ids) == ["m1", "m2"]
