"""Property-based tests for click-log aggregation and the IPC/ICR measures."""

from hypothesis import given
from hypothesis import strategies as st

from repro.clicklog.graph import ClickGraph
from repro.clicklog.log import ClickLog
from repro.core.selection import intersecting_click_ratio, intersecting_page_count

# A click tuple: small query/url alphabets so collisions (aggregation) happen.
query_strategy = st.sampled_from(["q1", "q2", "q3", "indy 4", "canon 350d"])
url_strategy = st.sampled_from([f"https://site{i}.example" for i in range(6)])
click_tuple_strategy = st.tuples(query_strategy, url_strategy, st.integers(1, 50))
click_log_strategy = st.lists(click_tuple_strategy, max_size=40)
url_set_strategy = st.sets(url_strategy, max_size=6)


class TestClickLogProperties:
    @given(click_log_strategy)
    def test_total_volume_equals_sum_of_tuples(self, tuples):
        log = ClickLog.from_tuples(tuples)
        assert log.total_click_volume() == sum(clicks for _q, _u, clicks in tuples)

    @given(click_log_strategy)
    def test_per_query_totals_consistent(self, tuples):
        log = ClickLog.from_tuples(tuples)
        for query in log.queries():
            assert log.total_clicks(query) == sum(log.clicks_by_url(query).values())

    @given(click_log_strategy)
    def test_reverse_index_consistent(self, tuples):
        log = ClickLog.from_tuples(tuples)
        for query in log.queries():
            for url in log.urls_clicked_for(query):
                assert query in log.queries_clicking(url)
        for url in log.urls():
            for query in log.queries_clicking(url):
                assert url in log.urls_clicked_for(query)

    @given(click_log_strategy)
    def test_iter_records_roundtrip(self, tuples):
        log = ClickLog.from_tuples(tuples)
        rebuilt = ClickLog(log.iter_records())
        assert rebuilt.total_click_volume() == log.total_click_volume()
        assert set(rebuilt.queries()) == set(log.queries())

    @given(click_log_strategy)
    def test_graph_stats_match_log(self, tuples):
        log = ClickLog.from_tuples(tuples)
        graph = ClickGraph.from_click_log(log)
        stats = graph.stats()
        assert stats.total_clicks == log.total_click_volume()
        assert stats.query_count == len(log.queries())
        assert stats.url_count == len(log.urls())


class TestMeasureProperties:
    @given(click_log_strategy, url_set_strategy, query_strategy)
    def test_icr_bounds(self, tuples, surrogates, query):
        log = ClickLog.from_tuples(tuples)
        icr = intersecting_click_ratio(log.clicks_by_url(query), surrogates)
        assert 0.0 <= icr <= 1.0

    @given(click_log_strategy, url_set_strategy, query_strategy)
    def test_ipc_bounded_by_both_sets(self, tuples, surrogates, query):
        log = ClickLog.from_tuples(tuples)
        clicked = log.urls_clicked_for(query)
        ipc = intersecting_page_count(clicked, surrogates)
        assert ipc <= min(len(clicked), len(surrogates))

    @given(click_log_strategy, query_strategy)
    def test_full_surrogate_set_gives_icr_one(self, tuples, query):
        log = ClickLog.from_tuples(tuples)
        clicked = log.urls_clicked_for(query)
        if not clicked:
            return
        assert intersecting_click_ratio(log.clicks_by_url(query), clicked) == 1.0

    @given(click_log_strategy, url_set_strategy, url_set_strategy, query_strategy)
    def test_icr_monotone_in_surrogate_set(self, tuples, smaller, extra, query):
        log = ClickLog.from_tuples(tuples)
        larger = smaller | extra
        clicks = log.clicks_by_url(query)
        assert intersecting_click_ratio(clicks, larger) >= intersecting_click_ratio(
            clicks, smaller
        )
