"""Property-based tests for the text substrate (hypothesis)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.normalize import normalize
from repro.text.similarity import (
    damerau_levenshtein_distance,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
)
from repro.text.stem import stem
from repro.text.tokenize import tokenize

# Strategies: printable text with a bias toward short query-like strings.
text_strategy = st.text(alphabet=string.printable, max_size=40)
word_strategy = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=15)
token_list_strategy = st.lists(word_strategy, max_size=8)


class TestNormalizeProperties:
    @given(text_strategy)
    def test_idempotent(self, text):
        once = normalize(text)
        assert normalize(once) == once

    @given(text_strategy)
    def test_output_is_lowercase_and_trimmed(self, text):
        result = normalize(text)
        assert result == result.lower()
        assert result == result.strip()
        assert "  " not in result

    @given(text_strategy)
    def test_tokenize_consistent_with_normalize(self, text):
        assert tokenize(text) == tokenize(normalize(text), normalized=True)


class TestLevenshteinProperties:
    @given(word_strategy, word_strategy)
    def test_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(word_strategy)
    def test_identity(self, a):
        assert levenshtein_distance(a, a) == 0

    @given(word_strategy, word_strategy)
    def test_upper_bound_is_longer_length(self, a, b):
        assert levenshtein_distance(a, b) <= max(len(a), len(b))

    @given(word_strategy, word_strategy)
    def test_lower_bound_is_length_difference(self, a, b):
        assert levenshtein_distance(a, b) >= abs(len(a) - len(b))

    @settings(max_examples=40)
    @given(word_strategy, word_strategy, word_strategy)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= (
            levenshtein_distance(a, b) + levenshtein_distance(b, c)
        )

    @given(word_strategy, word_strategy)
    def test_damerau_never_exceeds_levenshtein(self, a, b):
        assert damerau_levenshtein_distance(a, b) <= levenshtein_distance(a, b)

    @given(word_strategy, word_strategy)
    def test_similarity_bounds(self, a, b):
        assert 0.0 <= levenshtein_similarity(a, b) <= 1.0


class TestJaroProperties:
    @given(word_strategy, word_strategy)
    def test_bounds(self, a, b):
        assert 0.0 <= jaro_similarity(a, b) <= 1.0

    @given(word_strategy, word_strategy)
    def test_winkler_at_least_jaro(self, a, b):
        assert jaro_winkler_similarity(a, b) >= jaro_similarity(a, b) - 1e-12

    @given(word_strategy)
    def test_self_similarity_is_one(self, a):
        assert jaro_similarity(a, a) == 1.0

    @given(word_strategy, word_strategy)
    def test_symmetry(self, a, b):
        assert jaro_similarity(a, b) == jaro_similarity(b, a)


class TestJaccardProperties:
    @given(token_list_strategy, token_list_strategy)
    def test_bounds_and_symmetry(self, a, b):
        value = jaccard_similarity(a, b)
        assert 0.0 <= value <= 1.0
        assert value == jaccard_similarity(b, a)

    @given(token_list_strategy)
    def test_self_similarity(self, a):
        assert jaccard_similarity(a, a) == 1.0


class TestStemmerProperties:
    @given(word_strategy)
    def test_stem_never_longer_than_word(self, word):
        assert len(stem(word)) <= len(word)

    @given(word_strategy)
    def test_stem_is_deterministic(self, word):
        assert stem(word) == stem(word)
