"""Property-based tests for the dictionary, segmenter and matcher."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.dictionary import DictionaryEntry, SynonymDictionary
from repro.matching.matcher import MatchOutcome, QueryMatcher
from repro.matching.segmentation import QuerySegmenter
from repro.text.normalize import normalize
from repro.text.tokenize import tokenize

word = st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=8)
phrase = st.lists(word, min_size=1, max_size=4).map(" ".join)
entity_id = st.sampled_from(["e1", "e2", "e3"])
entries = st.lists(
    st.builds(DictionaryEntry, text=phrase, entity_id=entity_id),
    min_size=1,
    max_size=12,
)
raw_query = st.text(alphabet=string.ascii_letters + string.digits + " -:!", max_size=40)


class TestDictionaryProperties:
    @given(entries)
    def test_every_entry_is_exact_lookupable(self, dictionary_entries):
        dictionary = SynonymDictionary(dictionary_entries)
        for entry in dictionary_entries:
            assert normalize(entry.text) in dictionary
            assert entry.entity_id in dictionary.entities_for(entry.text)

    @given(entries)
    def test_token_index_consistent_with_entries(self, dictionary_entries):
        dictionary = SynonymDictionary(dictionary_entries)
        for entry in dictionary:
            for token in tokenize(entry.text, normalized=True):
                assert entry.text in dictionary.strings_containing_token(token)

    @given(entries)
    def test_adding_twice_never_grows_dictionary(self, dictionary_entries):
        dictionary = SynonymDictionary(dictionary_entries)
        size = len(dictionary)
        for entry in dictionary_entries:
            dictionary.add(entry)
        assert len(dictionary) == size


class TestSegmenterProperties:
    @settings(max_examples=60)
    @given(entries, raw_query)
    def test_segments_are_substrings_of_the_query_token_stream(self, dictionary_entries, query):
        segmenter = QuerySegmenter(SynonymDictionary(dictionary_entries))
        tokens = tokenize(query)
        for segment in segmenter.segments(query):
            assert 0 <= segment.start < segment.end <= len(tokens)
            assert segment.mention == " ".join(tokens[segment.start:segment.end])
            assert segment.entity_ids

    @settings(max_examples=60)
    @given(entries, raw_query)
    def test_best_segment_is_longest(self, dictionary_entries, query):
        segmenter = QuerySegmenter(SynonymDictionary(dictionary_entries))
        segments = segmenter.segments(query)
        if not segments:
            return
        best = segmenter.best_segment(query)
        assert best.token_length == max(segment.token_length for segment in segments)

    @settings(max_examples=40)
    @given(entries)
    def test_every_dictionary_string_matches_itself(self, dictionary_entries):
        dictionary = SynonymDictionary(dictionary_entries)
        segmenter = QuerySegmenter(dictionary)
        for entry in dictionary:
            best = segmenter.best_segment(entry.text)
            assert best is not None
            assert best.remainder == "" or best.token_length >= 1


class TestMatcherProperties:
    @settings(max_examples=60)
    @given(entries, raw_query)
    def test_matcher_never_raises_and_outcome_is_consistent(self, dictionary_entries, query):
        matcher = QueryMatcher(SynonymDictionary(dictionary_entries))
        match = matcher.match(query)
        if match.outcome is MatchOutcome.NO_MATCH:
            assert not match.entity_ids
            assert not match.matched
        else:
            assert match.entity_ids
            assert match.matched
            assert 0.0 < match.score <= 1.0

    @settings(max_examples=40)
    @given(entries)
    def test_exact_dictionary_strings_always_match(self, dictionary_entries):
        dictionary = SynonymDictionary(dictionary_entries)
        matcher = QueryMatcher(dictionary, enable_fuzzy=False)
        for entry in dictionary:
            match = matcher.match(entry.text)
            assert match.outcome is MatchOutcome.EXACT
            assert entry.entity_id in match.entity_ids

    @settings(max_examples=40)
    @given(entries, raw_query)
    def test_disabling_fuzzy_never_adds_matches(self, dictionary_entries, query):
        dictionary = SynonymDictionary(dictionary_entries)
        strict = QueryMatcher(dictionary, enable_fuzzy=False).match(query)
        loose = QueryMatcher(dictionary, enable_fuzzy=True).match(query)
        if strict.matched:
            assert loose.matched
