"""Property-based tests for the search substrate (index and BM25 ranking)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search.bm25 import BM25Scorer
from repro.search.documents import Corpus, WebPage
from repro.search.engine import SearchEngine
from repro.search.index import InvertedIndex
from repro.text.tokenize import tokenize

word = st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=7)
sentence = st.lists(word, min_size=1, max_size=12).map(" ".join)


@st.composite
def corpora(draw) -> Corpus:
    """Small random corpora with unique URLs."""
    page_count = draw(st.integers(1, 8))
    pages = []
    for index in range(page_count):
        pages.append(
            WebPage(
                url=f"https://site{index}.example/page",
                title=draw(sentence),
                body=draw(sentence),
            )
        )
    return Corpus(pages)


class TestIndexProperties:
    @settings(max_examples=50)
    @given(corpora())
    def test_document_frequency_matches_postings(self, corpus):
        index = InvertedIndex.from_corpus(corpus)
        for term in index.terms():
            postings = index.postings(term)
            assert index.document_frequency(term) == len(postings)
            assert len({posting.doc_id for posting in postings}) == len(postings)

    @settings(max_examples=50)
    @given(corpora())
    def test_document_lengths_equal_token_counts(self, corpus):
        index = InvertedIndex.from_corpus(corpus)
        for page in corpus:
            doc_id = index.doc_id_of(page.url)
            assert index.document_length(doc_id) == len(page.indexable_tokens())

    @settings(max_examples=50)
    @given(corpora())
    def test_every_title_token_is_indexed(self, corpus):
        index = InvertedIndex.from_corpus(corpus)
        for page in corpus:
            doc_id = index.doc_id_of(page.url)
            for token in tokenize(page.title):
                assert any(posting.doc_id == doc_id for posting in index.postings(token))


class TestBM25Properties:
    @settings(max_examples=50)
    @given(corpora(), sentence)
    def test_scores_are_positive_and_only_for_matching_documents(self, corpus, query):
        index = InvertedIndex.from_corpus(corpus)
        scorer = BM25Scorer(index)
        tokens = tokenize(query)
        scores = scorer.score_all(tokens)
        matching = index.candidate_documents(tokens)
        assert set(scores) <= matching
        assert all(score > 0.0 for score in scores.values())

    @settings(max_examples=50)
    @given(corpora())
    def test_idf_is_monotone_in_document_frequency(self, corpus):
        index = InvertedIndex.from_corpus(corpus)
        scorer = BM25Scorer(index)
        terms = sorted(index.terms())
        for left in terms[:10]:
            for right in terms[:10]:
                if index.document_frequency(left) < index.document_frequency(right):
                    assert scorer.idf(left) >= scorer.idf(right)


class TestEngineProperties:
    @settings(max_examples=40)
    @given(corpora(), sentence, st.integers(1, 5))
    def test_results_are_ranked_and_bounded(self, corpus, query, k):
        engine = SearchEngine(corpus)
        results = engine.search(query, k=k)
        assert len(results) <= k
        scores = [result.score for result in results]
        assert scores == sorted(scores, reverse=True)
        assert [result.rank for result in results] == list(range(1, len(results) + 1))
        assert len({result.url for result in results}) == len(results)

    @settings(max_examples=40)
    @given(corpora(), sentence)
    def test_search_is_deterministic(self, corpus, query):
        engine = SearchEngine(corpus)
        assert engine.search(query, k=5) == engine.search(query, k=5)

    @settings(max_examples=40)
    @given(corpora())
    def test_every_title_query_finds_its_page(self, corpus):
        engine = SearchEngine(corpus)
        for page in corpus:
            results = engine.search(page.title, k=len(corpus))
            assert page.url in {result.url for result in results}
