"""Property-based tests for the miner's invariants on arbitrary small logs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clicklog.log import ClickLog, SearchLog
from repro.core.config import MinerConfig
from repro.core.pipeline import SynonymMiner

CANONICAL = "the example entity title"

urls = [f"https://site{i}.example" for i in range(8)]
queries = ["alias one", "alias two", "broader term", "unrelated query", CANONICAL]

search_tuples = st.lists(
    st.tuples(st.just(CANONICAL), st.sampled_from(urls), st.integers(1, 10)),
    max_size=12,
)
click_tuples = st.lists(
    st.tuples(st.sampled_from(queries), st.sampled_from(urls), st.integers(1, 30)),
    max_size=40,
)
ipc_thresholds = st.integers(0, 6)
icr_thresholds = st.floats(0.0, 1.0)


def _build_miner(search, clicks, ipc, icr):
    # Deduplicate (query, rank) pairs so the search log stays a valid ranking.
    seen_ranks = set()
    deduped = []
    for query, url, rank in search:
        if (query, rank) in seen_ranks:
            continue
        seen_ranks.add((query, rank))
        deduped.append((query, url, rank))
    return SynonymMiner(
        click_log=ClickLog.from_tuples(clicks),
        search_log=SearchLog.from_tuples(deduped),
        config=MinerConfig(ipc_threshold=ipc, icr_threshold=icr),
    )


class TestMinerInvariants:
    @settings(max_examples=60)
    @given(search_tuples, click_tuples, ipc_thresholds, icr_thresholds)
    def test_selected_is_subset_of_candidates(self, search, clicks, ipc, icr):
        entry = _build_miner(search, clicks, ipc, icr).mine_one(CANONICAL)
        candidate_queries = {candidate.query for candidate in entry.candidates}
        assert set(entry.synonyms) <= candidate_queries

    @settings(max_examples=60)
    @given(search_tuples, click_tuples, ipc_thresholds, icr_thresholds)
    def test_selected_candidates_respect_thresholds(self, search, clicks, ipc, icr):
        entry = _build_miner(search, clicks, ipc, icr).mine_one(CANONICAL)
        for candidate in entry.selected:
            assert candidate.ipc >= ipc
            assert candidate.icr >= icr

    @settings(max_examples=60)
    @given(search_tuples, click_tuples, ipc_thresholds, icr_thresholds)
    def test_canonical_never_selected_for_itself(self, search, clicks, ipc, icr):
        entry = _build_miner(search, clicks, ipc, icr).mine_one(CANONICAL)
        assert CANONICAL not in entry.synonyms

    @settings(max_examples=40)
    @given(search_tuples, click_tuples, st.integers(0, 4), st.floats(0.0, 0.5))
    def test_tightening_thresholds_never_adds_synonyms(self, search, clicks, ipc, icr):
        miner = _build_miner(search, clicks, ipc, icr)
        loose = miner.mine_one(CANONICAL)
        tight_selector_result = miner.reselect(
            miner.mine([CANONICAL]), ipc_threshold=ipc + 2, icr_threshold=min(icr + 0.3, 1.0)
        )
        assert set(tight_selector_result[CANONICAL].synonyms) <= set(loose.synonyms)

    @settings(max_examples=40)
    @given(search_tuples, click_tuples, ipc_thresholds, icr_thresholds)
    def test_candidate_scores_are_valid(self, search, clicks, ipc, icr):
        entry = _build_miner(search, clicks, ipc, icr).mine_one(CANONICAL)
        surrogate_count = len(entry.surrogates)
        for candidate in entry.candidates:
            assert 0.0 <= candidate.icr <= 1.0
            assert 0 <= candidate.ipc <= surrogate_count
            assert candidate.clicks >= 0

    @settings(max_examples=40)
    @given(search_tuples, click_tuples)
    def test_ipc_zero_icr_zero_selects_every_candidate(self, search, clicks):
        entry = _build_miner(search, clicks, 0, 0.0).mine_one(CANONICAL)
        assert len(entry.selected) == len(entry.candidates)
