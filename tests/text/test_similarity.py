"""Tests for repro.text.similarity."""

import math

import pytest

from repro.text.similarity import (
    cosine_ngram_similarity,
    damerau_levenshtein_distance,
    dice_coefficient,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    longest_common_subsequence,
    token_containment,
    token_sort_ratio,
)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein_distance("kitten", "kitten") == 0

    def test_classic_example(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_empty_strings(self):
        assert levenshtein_distance("", "") == 0
        assert levenshtein_distance("abc", "") == 3
        assert levenshtein_distance("", "abcd") == 4

    def test_symmetric(self):
        assert levenshtein_distance("indy", "indiana") == levenshtein_distance("indiana", "indy")

    def test_similarity_range(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0
        assert levenshtein_similarity("", "") == 1.0

    def test_similarity_partial(self):
        assert math.isclose(levenshtein_similarity("abcd", "abce"), 0.75)


class TestDamerauLevenshtein:
    def test_transposition_counts_once(self):
        assert damerau_levenshtein_distance("ca", "ac") == 1
        assert levenshtein_distance("ca", "ac") == 2

    def test_identical(self):
        assert damerau_levenshtein_distance("same", "same") == 0

    def test_empty(self):
        assert damerau_levenshtein_distance("", "abc") == 3

    def test_never_exceeds_levenshtein(self):
        pairs = [("abcdef", "badcfe"), ("indy", "inyd"), ("rebel", "reble")]
        for a, b in pairs:
            assert damerau_levenshtein_distance(a, b) <= levenshtein_distance(a, b)


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_known_value(self):
        assert math.isclose(jaro_similarity("martha", "marhta"), 0.9444, abs_tol=1e-3)

    def test_no_overlap(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0

    def test_winkler_boosts_common_prefix(self):
        plain = jaro_similarity("prefixed", "prefixes")
        winkler = jaro_winkler_similarity("prefixed", "prefixes")
        assert winkler >= plain

    def test_winkler_known_value(self):
        assert math.isclose(
            jaro_winkler_similarity("martha", "marhta"), 0.9611, abs_tol=1e-3
        )

    def test_winkler_invalid_weight(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_weight=0.5)


class TestSetSimilarities:
    def test_jaccard(self):
        assert jaccard_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_jaccard_identical_and_empty(self):
        assert jaccard_similarity({"a"}, {"a"}) == 1.0
        assert jaccard_similarity(set(), set()) == 1.0

    def test_dice(self):
        assert dice_coefficient({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)

    def test_token_containment_asymmetric(self):
        assert token_containment(["indy", "4"], ["indy", "4", "trailer"]) == 1.0
        assert token_containment(["indy", "4", "trailer"], ["indy", "4"]) == pytest.approx(2 / 3)

    def test_token_containment_empty_needle(self):
        assert token_containment([], ["a"]) == 0.0


class TestCosineNgram:
    def test_identical(self):
        assert cosine_ngram_similarity("rebel xt", "rebel xt") == pytest.approx(1.0)

    def test_disjoint(self):
        assert cosine_ngram_similarity("aaaa", "zzzz") == 0.0

    def test_bounds(self):
        value = cosine_ngram_similarity("digital rebel", "digital rebel xt")
        assert 0.0 < value < 1.0


class TestSequenceHelpers:
    def test_lcs(self):
        assert longest_common_subsequence("abcde", "ace") == 3

    def test_lcs_empty(self):
        assert longest_common_subsequence("", "abc") == 0

    def test_lcs_on_token_lists(self):
        assert longest_common_subsequence(["a", "b", "c"], ["a", "c"]) == 2

    def test_token_sort_ratio_reorders(self):
        assert token_sort_ratio("rebel digital xt", "digital rebel xt") == 1.0

    def test_token_sort_ratio_different_strings(self):
        assert token_sort_ratio("canon eos", "nikon d90") < 0.6
