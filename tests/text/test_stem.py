"""Tests for the Porter stemmer."""

import pytest

from repro.text.stem import PorterStemmer, stem, stem_tokens


KNOWN_PAIRS = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("cats", "cat"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubling", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("falling", "fall"),
    ("happy", "happi"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("vietnamization", "vietnam"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("hopefulness", "hope"),
    ("formality", "formal"),
    ("sensibility", "sensibl"),
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("effective", "effect"),
    ("probate", "probat"),
    ("controlling", "control"),
    ("cameras", "camera"),
    ("movies", "movi"),
]


class TestPorterStemmer:
    @pytest.mark.parametrize("word,expected", KNOWN_PAIRS)
    def test_known_stems(self, word, expected):
        assert stem(word) == expected

    def test_short_words_untouched(self):
        assert stem("by") == "by"
        assert stem("is") == "is"

    def test_non_alpha_untouched(self):
        assert stem("350d") == "350d"
        assert stem("x264") == "x264"

    def test_instance_and_module_function_agree(self):
        stemmer = PorterStemmer()
        for word, _expected in KNOWN_PAIRS:
            assert stemmer.stem(word) == stem(word)

    def test_stem_tokens_preserves_order_and_length(self):
        tokens = ["running", "cameras", "quickly"]
        stemmed = stem_tokens(tokens)
        assert len(stemmed) == len(tokens)
        assert stemmed[0] == stem("running")

    def test_stemming_conflates_inflections(self):
        assert stem("walking") == stem("walked") == stem("walks")
