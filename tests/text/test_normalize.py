"""Tests for repro.text.normalize."""

from repro.text.normalize import (
    normalize,
    normalize_aggressive,
    normalize_whitespace,
    strip_accents,
    strip_punctuation,
)


class TestStripAccents:
    def test_removes_combining_accents(self):
        assert strip_accents("Pokémon") == "Pokemon"

    def test_handles_multiple_accents(self):
        assert strip_accents("Ángström café") == "Angstrom cafe"

    def test_plain_ascii_unchanged(self):
        assert strip_accents("plain ascii text") == "plain ascii text"

    def test_empty_string(self):
        assert strip_accents("") == ""


class TestNormalizeWhitespace:
    def test_collapses_runs(self):
        assert normalize_whitespace("a   b\t\tc") == "a b c"

    def test_strips_ends(self):
        assert normalize_whitespace("  padded  ") == "padded"

    def test_newlines_become_spaces(self):
        assert normalize_whitespace("line\nbreak") == "line break"


class TestStripPunctuation:
    def test_separators_become_spaces(self):
        assert strip_punctuation("a-b:c/d") == "a b c d"

    def test_inner_apostrophe_removed(self):
        assert strip_punctuation("director's cut") == "directors cut"

    def test_brackets_removed(self):
        assert strip_punctuation("(2008) [HD]") == " 2008   HD "


class TestNormalize:
    def test_full_title_example(self):
        raw = "  Indiana Jones: and the Kingdom of the Crystal Skull "
        assert normalize(raw) == "indiana jones and the kingdom of the crystal skull"

    def test_lowercases(self):
        assert normalize("Canon EOS 350D") == "canon eos 350d"

    def test_idempotent(self):
        once = normalize("Madagascar: Escape 2 Africa!")
        assert normalize(once) == once

    def test_accents_and_case_together(self):
        assert normalize("Amélie: Le Film") == "amelie le film"

    def test_empty_input(self):
        assert normalize("") == ""

    def test_punctuation_only(self):
        assert normalize(":-()[]") == ""


class TestNormalizeAggressive:
    def test_removes_residual_symbols(self):
        assert normalize_aggressive("mac os x 10.5 §") == "mac os x 10 5"

    def test_keeps_alphanumerics_and_spaces(self):
        assert normalize_aggressive("Canon EOS-350D") == "canon eos 350d"
