"""Tests for repro.text.tokenize."""

import pytest

from repro.text.tokenize import char_ngrams, ngrams, token_set, tokenize, word_positions


class TestTokenize:
    def test_basic_split(self):
        assert tokenize("Indiana Jones 4") == ["indiana", "jones", "4"]

    def test_model_numbers_stay_joined(self):
        assert tokenize("Canon EOS-350D") == ["canon", "eos", "350d"]

    def test_already_normalized_flag(self):
        assert tokenize("canon eos 350d", normalized=True) == ["canon", "eos", "350d"]

    def test_empty(self):
        assert tokenize("") == []

    def test_punctuation_only(self):
        assert tokenize("!!! --- ???") == []


class TestTokenSet:
    def test_deduplicates(self):
        assert token_set("the the the movie") == frozenset({"the", "movie"})

    def test_is_frozenset(self):
        assert isinstance(token_set("a b"), frozenset)


class TestNgrams:
    def test_bigrams(self):
        assert list(ngrams(["a", "b", "c"], 2)) == [("a", "b"), ("b", "c")]

    def test_window_equal_to_length(self):
        assert list(ngrams(["a", "b"], 2)) == [("a", "b")]

    def test_window_longer_than_input(self):
        assert list(ngrams(["a"], 3)) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            list(ngrams(["a"], 0))


class TestCharNgrams:
    def test_padded_grams(self):
        assert char_ngrams("ab", 3) == ["^ab", "ab$"]

    def test_unpadded_exact_length(self):
        assert char_ngrams("abc", 3, pad=False) == ["abc"]

    def test_short_string_returns_whole(self):
        assert char_ngrams("a", 3, pad=False) == ["a"]

    def test_empty_string_unpadded(self):
        assert char_ngrams("", 3, pad=False) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            char_ngrams("abc", 0)


class TestWordPositions:
    def test_positions_recorded(self):
        positions = word_positions("to be or not to be")
        assert positions["to"] == [0, 4]
        assert positions["be"] == [1, 5]
        assert positions["or"] == [2]

    def test_empty(self):
        assert word_positions("") == {}
