"""Tests for repro.text.stopwords."""

from repro.text.stopwords import STOPWORDS, content_tokens, is_stopword, remove_stopwords


class TestStopwords:
    def test_common_words_present(self):
        for word in ("the", "and", "of", "a"):
            assert word in STOPWORDS

    def test_is_stopword(self):
        assert is_stopword("the")
        assert not is_stopword("indiana")

    def test_remove_stopwords_preserves_order(self):
        tokens = ["the", "kingdom", "of", "the", "crystal", "skull"]
        assert remove_stopwords(tokens) == ["kingdom", "crystal", "skull"]

    def test_remove_stopwords_keeps_duplicates_of_content_words(self):
        assert remove_stopwords(["new", "new", "the"]) == ["new", "new"]

    def test_content_tokens_fallback_when_all_stopwords(self):
        assert content_tokens(["the", "of"]) == ["the", "of"]

    def test_content_tokens_normal_case(self):
        assert content_tokens(["the", "skull"]) == ["skull"]
