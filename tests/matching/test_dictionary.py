"""Tests for the synonym dictionary."""

import pytest

from repro.core.types import EntitySynonyms, MiningResult, SynonymCandidate
from repro.matching.dictionary import DictionaryEntry, SynonymDictionary
from repro.simulation.catalog import Entity, EntityCatalog


@pytest.fixture()
def catalog():
    return EntityCatalog(
        "movie",
        [
            Entity("m1", "Indiana Jones and the Kingdom of the Crystal Skull", "movie"),
            Entity("m2", "Madagascar Escape 2 Africa", "movie"),
        ],
    )


@pytest.fixture()
def mining_result():
    result = MiningResult()
    result.add(
        EntitySynonyms(
            canonical="indiana jones and the kingdom of the crystal skull",
            surrogates=(),
            selected=[
                SynonymCandidate(query="indy 4", ipc=5, icr=0.9, clicks=120),
                SynonymCandidate(query="indiana jones 4", ipc=4, icr=0.8, clicks=80),
            ],
        )
    )
    result.add(
        EntitySynonyms(
            canonical="madagascar escape 2 africa",
            surrogates=(),
            selected=[SynonymCandidate(query="madagascar 2", ipc=6, icr=0.95, clicks=200)],
        )
    )
    return result


class TestAdd:
    def test_entries_normalized(self):
        dictionary = SynonymDictionary([DictionaryEntry("Indy 4!", "m1")])
        assert "indy 4" in dictionary
        assert dictionary.entities_for("INDY 4") == {"m1"}

    def test_duplicates_collapsed(self):
        dictionary = SynonymDictionary(
            [DictionaryEntry("indy 4", "m1"), DictionaryEntry("Indy 4", "m1")]
        )
        assert len(dictionary) == 1

    def test_duplicate_keeps_max_weight(self):
        # Canonical (weight 1.0) first, then the mined entry carrying real
        # click evidence: the dictionary must keep the heavier entry, not
        # silently drop it because the string was already present.
        dictionary = SynonymDictionary(
            [
                DictionaryEntry("indy 4", "m1", source="canonical", weight=1.0),
                DictionaryEntry("indy 4", "m1", source="mined", weight=120.0),
            ]
        )
        assert len(dictionary) == 1
        (entry,) = dictionary.lookup("indy 4")
        assert entry.weight == 120.0
        assert entry.source == "mined"

    def test_duplicate_with_lower_weight_ignored(self):
        dictionary = SynonymDictionary(
            [
                DictionaryEntry("indy 4", "m1", source="mined", weight=120.0),
                DictionaryEntry("indy 4", "m1", source="manual", weight=2.0),
            ]
        )
        (entry,) = dictionary.lookup("indy 4")
        assert entry.weight == 120.0
        assert entry.source == "mined"

    def test_duplicate_never_skews_token_shortlist(self):
        dictionary = SynonymDictionary(
            [
                DictionaryEntry("indy 4", "m1", weight=1.0),
                DictionaryEntry("indy 4", "m1", weight=50.0),
                DictionaryEntry("indy 4", "m2", weight=3.0),
            ]
        )
        # One string, two entities — iteration and the exact bucket hold
        # exactly one entry per (text, entity) pair.
        assert len(dictionary) == 2
        assert len(dictionary.lookup("indy 4")) == 2
        assert dictionary.strings_containing_token("indy") == {"indy 4"}

    def test_same_string_two_entities_kept(self):
        dictionary = SynonymDictionary(
            [DictionaryEntry("shared", "m1"), DictionaryEntry("shared", "m2")]
        )
        assert dictionary.entities_for("shared") == {"m1", "m2"}

    def test_empty_string_ignored(self):
        dictionary = SynonymDictionary([DictionaryEntry("  !!", "m1")])
        assert len(dictionary) == 0


class TestBuildFromMiningResult:
    def test_canonical_and_synonyms_included(self, mining_result, catalog):
        dictionary = SynonymDictionary.from_mining_result(mining_result, catalog)
        assert dictionary.entities_for("indy 4") == {"m1"}
        assert dictionary.entities_for(
            "indiana jones and the kingdom of the crystal skull"
        ) == {"m1"}
        assert dictionary.entities_for("madagascar 2") == {"m2"}

    def test_canonical_excluded_when_requested(self, mining_result, catalog):
        dictionary = SynonymDictionary.from_mining_result(
            mining_result, catalog, include_canonical=False
        )
        assert dictionary.entities_for(
            "indiana jones and the kingdom of the crystal skull"
        ) == set()
        assert dictionary.entities_for("indy 4") == {"m1"}

    def test_unknown_canonical_skipped(self, catalog):
        result = MiningResult()
        result.add(EntitySynonyms(canonical="not in catalog", surrogates=(), selected=[]))
        dictionary = SynonymDictionary.from_mining_result(result, catalog)
        assert len(dictionary) == 0

    def test_from_catalog_only(self, catalog):
        dictionary = SynonymDictionary.from_catalog(catalog)
        assert len(dictionary) == 2
        assert all(entry.source == "canonical" for entry in dictionary)


class TestLookups:
    def test_strings_for_entity(self, mining_result, catalog):
        dictionary = SynonymDictionary.from_mining_result(mining_result, catalog)
        strings = dictionary.strings_for_entity("m1")
        assert "indy 4" in strings and "indiana jones 4" in strings

    def test_token_index(self, mining_result, catalog):
        dictionary = SynonymDictionary.from_mining_result(mining_result, catalog)
        assert "indy 4" in dictionary.strings_containing_token("indy")
        assert dictionary.strings_containing_token("nonexistent") == set()

    def test_max_entry_tokens(self, mining_result, catalog):
        dictionary = SynonymDictionary.from_mining_result(mining_result, catalog)
        assert dictionary.max_entry_tokens >= 8

    def test_max_entry_tokens_empty(self):
        assert SynonymDictionary().max_entry_tokens == 0
