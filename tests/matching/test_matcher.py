"""Tests for the online query matcher."""

import pytest

from repro.matching.dictionary import DictionaryEntry, SynonymDictionary
from repro.matching.matcher import MatchOutcome, QueryMatcher


@pytest.fixture()
def dictionary():
    return SynonymDictionary(
        [
            DictionaryEntry("indiana jones and the kingdom of the crystal skull", "m1", "canonical"),
            DictionaryEntry("indy 4", "m1"),
            DictionaryEntry("indiana jones 4", "m1"),
            DictionaryEntry("madagascar escape 2 africa", "m2", "canonical"),
            DictionaryEntry("madagascar 2", "m2"),
            DictionaryEntry("digital rebel xt", "c1"),
        ]
    )


@pytest.fixture()
def matcher(dictionary):
    return QueryMatcher(dictionary)


class TestExactMatching:
    def test_motivating_example(self, matcher):
        match = matcher.match("indy 4 near san fran")
        assert match.outcome is MatchOutcome.EXACT
        assert match.entity_ids == frozenset({"m1"})
        assert match.matched_text == "indy 4"
        assert match.remainder == "near san fran"
        assert match.matched

    def test_canonical_form_matches(self, matcher):
        match = matcher.match("Indiana Jones and the Kingdom of the Crystal Skull")
        assert match.outcome is MatchOutcome.EXACT
        assert match.entity_ids == {"m1"}

    def test_codename_matches_distinct_entity(self, matcher):
        assert matcher.match("digital rebel xt price").entity_ids == {"c1"}

    def test_empty_query(self, matcher):
        match = matcher.match("   ")
        assert match.outcome is MatchOutcome.NO_MATCH
        assert not match.matched


class TestFuzzyMatching:
    def test_misspelling_recovered(self, matcher):
        match = matcher.match("indiana jnoes 4")
        assert match.outcome is MatchOutcome.FUZZY
        assert match.entity_ids == {"m1"}
        assert 0.0 < match.score <= 1.0

    def test_fuzzy_disabled(self, dictionary):
        strict = QueryMatcher(dictionary, enable_fuzzy=False)
        assert strict.match("indiana jnoes 4").outcome is MatchOutcome.NO_MATCH

    def test_unrelated_query_not_matched(self, matcher):
        assert matcher.match("weather forecast tomorrow").outcome is MatchOutcome.NO_MATCH

    def test_sharing_one_token_is_not_enough(self, matcher):
        # "madagascar wildlife documentary" shares a token with an entry but
        # is far from any dictionary string.
        assert matcher.match("madagascar wildlife documentary").outcome is MatchOutcome.NO_MATCH

    def test_invalid_thresholds(self, dictionary):
        with pytest.raises(ValueError):
            QueryMatcher(dictionary, fuzzy_similarity_threshold=1.5)
        with pytest.raises(ValueError):
            QueryMatcher(dictionary, fuzzy_containment_threshold=-0.1)

    def test_query_empty_after_normalization(self, matcher):
        # Punctuation-only input normalizes to "" and must short-circuit to
        # NO_MATCH before segmentation or the fuzzy fallback ever run.
        for query in ("!!!", "  ...  ", "-_-", "'"):
            match = matcher.match(query)
            assert match.outcome is MatchOutcome.NO_MATCH, query
            assert match.query == query
            assert not match.matched

    def test_token_hit_but_every_candidate_below_threshold(self, dictionary):
        # "madagascar holiday rentals" shortlists dictionary strings through
        # the shared "madagascar" token, but every candidate fails the
        # similarity threshold — the fallback must return NO_MATCH rather
        # than the least-bad candidate.
        matcher = QueryMatcher(dictionary, fuzzy_similarity_threshold=0.95)
        query = "madagascar holiday rentals"
        shortlist = dictionary.strings_containing_token("madagascar")
        assert shortlist, "precondition: the token index must produce candidates"
        match = matcher.match(query)
        assert match.outcome is MatchOutcome.NO_MATCH
        assert match.entity_ids == frozenset()

    def test_containment_filter_rejects_before_similarity(self, dictionary):
        # A candidate sharing one token out of many is dropped by the
        # containment gate even with a permissive similarity threshold.
        permissive = QueryMatcher(
            dictionary,
            fuzzy_similarity_threshold=0.0,
            fuzzy_containment_threshold=1.0,
        )
        assert permissive.match("madagascar x").outcome is MatchOutcome.NO_MATCH


class TestBatchAndCoverage:
    def test_match_all_preserves_order(self, matcher):
        queries = ["indy 4", "unknown thing", "madagascar 2"]
        matches = matcher.match_all(queries)
        assert [match.query for match in matches] == queries

    def test_coverage_fraction(self, matcher):
        queries = ["indy 4 showtimes", "madagascar 2", "weather forecast", "lottery numbers"]
        assert matcher.coverage(queries) == pytest.approx(0.5)

    def test_coverage_empty(self, matcher):
        assert matcher.coverage([]) == 0.0

    def test_expanded_dictionary_beats_canonical_only(self, dictionary):
        canonical_only = SynonymDictionary(
            [entry for entry in dictionary if entry.source == "canonical"]
        )
        queries = ["indy 4 near san fran", "madagascar 2 dvd", "digital rebel xt review"]
        expanded = QueryMatcher(dictionary, enable_fuzzy=False).coverage(queries)
        baseline = QueryMatcher(canonical_only, enable_fuzzy=False).coverage(queries)
        assert expanded > baseline
