"""Tests for query segmentation."""

import pytest

from repro.matching.dictionary import DictionaryEntry, SynonymDictionary
from repro.matching.segmentation import QuerySegmenter


@pytest.fixture()
def dictionary():
    return SynonymDictionary(
        [
            DictionaryEntry("indy 4", "m1"),
            DictionaryEntry("indiana jones 4", "m1"),
            DictionaryEntry("madagascar 2", "m2"),
            DictionaryEntry("san fran", "city-sf"),
        ]
    )


@pytest.fixture()
def segmenter(dictionary):
    return QuerySegmenter(dictionary)


class TestSegmentation:
    def test_finds_entity_span_with_remainder(self, segmenter):
        segment = segmenter.best_segment("indy 4 near san fran")
        assert segment is not None
        assert segment.mention == "indy 4"
        assert segment.remainder == "near san fran"
        assert segment.entity_ids == frozenset({"m1"})

    def test_longest_span_preferred(self, segmenter):
        segment = segmenter.best_segment("indiana jones 4 showtimes")
        assert segment.mention == "indiana jones 4"

    def test_all_segments_reported(self, segmenter):
        segments = segmenter.segments("indy 4 near san fran")
        mentions = {segment.mention for segment in segments}
        assert {"indy 4", "san fran"} <= mentions

    def test_no_match(self, segmenter):
        assert segmenter.best_segment("completely unrelated words") is None
        assert segmenter.segments("") == []

    def test_span_offsets(self, segmenter):
        segment = segmenter.best_segment("watch indy 4 tonight")
        assert (segment.start, segment.end) == (1, 3)
        assert segment.token_length == 2

    def test_whole_query_is_mention(self, segmenter):
        segment = segmenter.best_segment("madagascar 2")
        assert segment.mention == "madagascar 2"
        assert segment.remainder == ""

    def test_raw_unnormalized_query(self, segmenter):
        segment = segmenter.best_segment("  INDY-4 near San-Fran!!")
        assert segment.mention == "indy 4"

    def test_max_span_tokens_override(self, dictionary):
        segmenter = QuerySegmenter(dictionary, max_span_tokens=1)
        assert segmenter.best_segment("indy 4 near san fran") is None
