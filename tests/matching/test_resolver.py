"""Tests for ambiguous-match resolution."""

import pytest

from repro.clicklog.log import ClickLog
from repro.matching.dictionary import DictionaryEntry, SynonymDictionary
from repro.matching.matcher import QueryMatcher
from repro.matching.resolver import MatchResolver


@pytest.fixture()
def dictionary():
    return SynonymDictionary(
        [
            DictionaryEntry("lyra quinn", "m1"),
            DictionaryEntry("lyra quinn", "m2"),
            DictionaryEntry("lyra quinn and the kingdom of the crystal skull", "m1", "canonical"),
            DictionaryEntry("kingdom of the crystal skull", "m1"),
            DictionaryEntry("lyra quinn 2 and the empire of the shattered crown", "m2", "canonical"),
            DictionaryEntry("empire of the shattered crown", "m2"),
        ]
    )


@pytest.fixture()
def click_log():
    return ClickLog.from_tuples(
        [
            # m2's strings carry much more traffic than m1's.
            ("empire of the shattered crown", "https://a.example", 500),
            ("lyra quinn 2 and the empire of the shattered crown", "https://a.example", 100),
            ("kingdom of the crystal skull", "https://b.example", 40),
        ]
    )


@pytest.fixture()
def matcher(dictionary):
    return QueryMatcher(dictionary, enable_fuzzy=False)


class TestValidation:
    def test_negative_context_weight_rejected(self, dictionary):
        with pytest.raises(ValueError):
            MatchResolver(dictionary, context_weight=-1.0)


class TestPriors:
    def test_prior_without_click_log_is_uniform(self, dictionary):
        resolver = MatchResolver(dictionary)
        assert resolver.prior("m1") == resolver.prior("m2") == 1.0

    def test_prior_reflects_click_volume(self, dictionary, click_log):
        resolver = MatchResolver(dictionary, click_log=click_log)
        assert resolver.prior("m2") > resolver.prior("m1")

    def test_prior_cached(self, dictionary, click_log):
        resolver = MatchResolver(dictionary, click_log=click_log)
        assert resolver.prior("m2") == resolver.prior("m2")


class TestPrecomputedPriors:
    """Priors from a mapping (e.g. an artifact's priors block) vs the live log."""

    def test_mapping_values_used_directly(self, dictionary):
        resolver = MatchResolver(dictionary, priors={"m1": 40.0, "m2": 600.0})
        assert resolver.prior("m1") == 40.0
        assert resolver.prior("m2") == 600.0

    def test_unknown_entity_scores_zero(self, dictionary):
        # Matches the live-log behaviour: an entity with no known strings
        # sums an empty click set.
        resolver = MatchResolver(dictionary, priors={"m1": 40.0})
        assert resolver.prior("ghost") == 0.0

    def test_both_sources_rejected(self, dictionary, click_log):
        with pytest.raises(ValueError, match="not both"):
            MatchResolver(dictionary, click_log=click_log, priors={"m1": 1.0})

    def test_rank_from_mapping_equals_rank_from_live_log(
        self, dictionary, click_log, matcher
    ):
        """The precomputed path is field-for-field the live-log path."""
        live = MatchResolver(dictionary, click_log=click_log)
        mapping = {entity: live.prior(entity) for entity in ("m1", "m2")}
        frozen = MatchResolver(dictionary, priors=mapping)
        for query in ("lyra quinn", "lyra quinn crystal skull", "lyra quinn shattered crown"):
            match = matcher.match(query)
            assert frozen.rank(match) == live.rank(match), query


class TestContextOverlap:
    def test_context_tokens_disambiguate(self, dictionary):
        resolver = MatchResolver(dictionary)
        assert resolver.context_overlap("m1", "crystal skull showtimes") > resolver.context_overlap(
            "m2", "crystal skull showtimes"
        )

    def test_empty_remainder_gives_zero(self, dictionary):
        resolver = MatchResolver(dictionary)
        assert resolver.context_overlap("m1", "") == 0.0

    def test_stopword_only_remainder_gives_zero(self, dictionary):
        resolver = MatchResolver(dictionary)
        assert resolver.context_overlap("m1", "the of and") == 0.0


class TestResolution:
    def test_unambiguous_match_passes_through(self, dictionary, matcher):
        resolver = MatchResolver(dictionary)
        match = matcher.match("kingdom of the crystal skull")
        assert resolver.resolve(match) == "m1"

    def test_context_beats_popularity(self, dictionary, click_log, matcher):
        resolver = MatchResolver(dictionary, click_log=click_log)
        match = matcher.match("lyra quinn crystal skull")
        assert match.entity_ids == {"m1", "m2"}
        assert resolver.resolve(match) == "m1"

    def test_popularity_breaks_contextless_ties(self, dictionary, click_log, matcher):
        resolver = MatchResolver(dictionary, click_log=click_log)
        match = matcher.match("lyra quinn")
        assert resolver.resolve(match) == "m2"

    def test_rank_is_sorted_and_complete(self, dictionary, click_log, matcher):
        resolver = MatchResolver(dictionary, click_log=click_log)
        ranked = resolver.rank(matcher.match("lyra quinn"))
        assert {item.entity_id for item in ranked} == {"m1", "m2"}
        scores = [item.score for item in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_resolve_unmatched_query(self, dictionary, matcher):
        resolver = MatchResolver(dictionary)
        assert resolver.resolve(matcher.match("nothing here")) is None
