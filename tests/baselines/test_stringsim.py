"""Tests for the string-similarity baseline."""

import pytest

from repro.baselines.stringsim import StringSimilarityConfig, StringSimilaritySynonymFinder
from repro.clicklog.log import ClickLog


@pytest.fixture()
def click_log():
    return ClickLog.from_tuples(
        [
            ("madagascar 2", "https://a.example", 30),
            ("madagascar escape 2 africa trailer", "https://a.example", 5),
            ("escape africa", "https://a.example", 10),
            ("digital rebel xt", "https://b.example", 40),
            ("canox eon 350d", "https://b.example", 8),
            ("weather forecast", "https://c.example", 90),
        ]
    )


class TestConfig:
    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            StringSimilarityConfig(containment_threshold=1.2)
        with pytest.raises(ValueError):
            StringSimilarityConfig(similarity_threshold=-0.1)
        with pytest.raises(ValueError):
            StringSimilarityConfig(max_synonyms=0)


class TestStringSimilarityBaseline:
    def test_easy_case_found(self, click_log):
        finder = StringSimilaritySynonymFinder(click_log)
        entry = finder.find_one("Madagascar Escape 2 Africa")
        assert "madagascar 2" in entry.synonyms

    def test_false_positive_substring(self, click_log):
        # The paper's example: "Escape Africa" is a token-contained substring
        # of "Madagascar: Escape 2 Africa" but not a true synonym — the
        # surface method happily reports it, which is exactly its weakness.
        finder = StringSimilaritySynonymFinder(click_log)
        entry = finder.find_one("Madagascar Escape 2 Africa")
        assert "escape africa" in entry.synonyms

    def test_codename_case_hopeless(self, click_log):
        # "Digital Rebel XT" shares no tokens with "Canox EON 350D": the
        # surface method cannot find it.
        finder = StringSimilaritySynonymFinder(click_log)
        entry = finder.find_one("Canox EON 350D")
        assert "digital rebel xt" not in entry.synonyms

    def test_unrelated_queries_excluded(self, click_log):
        finder = StringSimilaritySynonymFinder(click_log)
        entry = finder.find_one("Madagascar Escape 2 Africa")
        assert "weather forecast" not in entry.synonyms

    def test_canonical_itself_excluded(self, click_log):
        finder = StringSimilaritySynonymFinder(click_log)
        entry = finder.find_one("madagascar 2")
        assert "madagascar 2" not in entry.synonyms

    def test_max_synonyms_cap(self, click_log):
        finder = StringSimilaritySynonymFinder(
            click_log, StringSimilarityConfig(max_synonyms=1, containment_threshold=0.3, similarity_threshold=0.1)
        )
        assert len(finder.find_one("Madagascar Escape 2 Africa").selected) == 1

    def test_find_many(self, click_log):
        finder = StringSimilaritySynonymFinder(click_log)
        result = finder.find(["Madagascar Escape 2 Africa", "Canox EON 350D"])
        assert len(result) == 2
        assert result.hit_count >= 1
