"""Tests for the random-walk baseline."""

import pytest

from repro.baselines.randomwalk import RandomWalkConfig, RandomWalkSynonymFinder
from repro.clicklog.graph import ClickGraph
from repro.clicklog.log import ClickLog


@pytest.fixture()
def graph():
    """Two queries sharing a URL plus one isolated query."""
    log = ClickLog.from_tuples(
        [
            ("indy 4", "https://a.example", 50),
            ("indy 4", "https://b.example", 50),
            ("indiana jones 4", "https://a.example", 40),
            ("indiana jones 4", "https://b.example", 40),
            ("harrison ford", "https://c.example", 100),
            ("harrison ford", "https://a.example", 2),
        ]
    )
    return ClickGraph.from_click_log(log)


class TestConfig:
    def test_defaults(self):
        config = RandomWalkConfig()
        assert config.self_transition == pytest.approx(0.8)

    def test_invalid_self_transition(self):
        with pytest.raises(ValueError):
            RandomWalkConfig(self_transition=1.0)

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            RandomWalkConfig(steps=0)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            RandomWalkConfig(probability_threshold=-0.1)

    def test_invalid_max_synonyms(self):
        with pytest.raises(ValueError):
            RandomWalkConfig(max_synonyms=0)


class TestWalkDistribution:
    def test_distribution_sums_to_one(self, graph):
        finder = RandomWalkSynonymFinder(graph)
        distribution = finder.walk_distribution("indy 4")
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_start_node_excluded(self, graph):
        finder = RandomWalkSynonymFinder(graph)
        assert "indy 4" not in finder.walk_distribution("indy 4")

    def test_strongly_connected_query_ranks_highest(self, graph):
        finder = RandomWalkSynonymFinder(graph)
        distribution = finder.walk_distribution("indy 4")
        assert distribution["indiana jones 4"] > distribution["harrison ford"]

    def test_missing_start_query_gives_empty(self, graph):
        finder = RandomWalkSynonymFinder(graph)
        assert finder.walk_distribution("never asked query") == {}

    def test_more_steps_spread_more_mass(self, graph):
        short = RandomWalkSynonymFinder(graph, RandomWalkConfig(steps=1))
        long = RandomWalkSynonymFinder(graph, RandomWalkConfig(steps=9))
        assert len(long.walk_distribution("indy 4")) >= len(short.walk_distribution("indy 4"))


class TestSynonymProduction:
    def test_find_one_selects_related_query(self, graph):
        finder = RandomWalkSynonymFinder(graph)
        entry = finder.find_one("indy 4")
        assert "indiana jones 4" in entry.synonyms

    def test_threshold_filters_weak_queries(self, graph):
        permissive = RandomWalkSynonymFinder(graph, RandomWalkConfig(probability_threshold=0.0))
        strict = RandomWalkSynonymFinder(graph, RandomWalkConfig(probability_threshold=0.5))
        assert len(strict.find_one("indy 4").synonyms) <= len(
            permissive.find_one("indy 4").synonyms
        )

    def test_max_synonyms_cap(self, graph):
        capped = RandomWalkSynonymFinder(
            graph, RandomWalkConfig(probability_threshold=0.0, max_synonyms=1)
        )
        assert len(capped.find_one("indy 4").synonyms) == 1

    def test_unqueried_canonical_produces_nothing(self, graph):
        # The paper's observation: verbose canonical strings that were never
        # issued as queries get no synonyms from the click-graph walk.
        finder = RandomWalkSynonymFinder(graph)
        entry = finder.find_one("canox eon 4571 mark ii")
        assert not entry.has_synonyms

    def test_find_many(self, graph):
        finder = RandomWalkSynonymFinder(graph)
        result = finder.find(["indy 4", "unknown camera"])
        assert result.hit_count == 1
        assert len(result) == 2
