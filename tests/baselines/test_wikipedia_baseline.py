"""Tests for the Wikipedia-redirect baseline."""

import pytest

from repro.baselines.wikipedia import WikipediaSynonymFinder
from repro.simulation.aliases import build_alias_table
from repro.simulation.catalog import camera_catalog, movie_catalog
from repro.simulation.wikipedia import (
    CAMERA_WIKIPEDIA_CONFIG,
    MOVIE_WIKIPEDIA_CONFIG,
    SimulatedWikipedia,
)


@pytest.fixture(scope="module")
def movie_setup():
    catalog = movie_catalog(size=50, seed=31)
    table = build_alias_table(catalog, seed=31)
    wiki = SimulatedWikipedia.build(catalog, table, MOVIE_WIKIPEDIA_CONFIG)
    return catalog, table, wiki


class TestWikipediaBaseline:
    def test_covered_entity_produces_redirect_synonyms(self, movie_setup):
        catalog, _table, wiki = movie_setup
        finder = WikipediaSynonymFinder(wiki, catalog)
        covered_id = next(iter(wiki.covered_entities()))
        entity = catalog[covered_id]
        entry = finder.find_one(entity.canonical_name)
        assert entry.has_synonyms
        assert set(entry.synonyms) == {s.lower() for s in wiki.redirects_for(covered_id)}

    def test_unknown_string_produces_nothing(self, movie_setup):
        catalog, _table, wiki = movie_setup
        finder = WikipediaSynonymFinder(wiki, catalog)
        assert not finder.find_one("not an entity at all").has_synonyms

    def test_find_covers_whole_catalog(self, movie_setup):
        catalog, _table, wiki = movie_setup
        finder = WikipediaSynonymFinder(wiki, catalog)
        result = finder.find(entity.canonical_name for entity in catalog)
        assert len(result) == len(catalog)
        assert result.hit_count == wiki.article_count

    def test_results_deduplicated_and_normalized(self, movie_setup):
        catalog, _table, wiki = movie_setup
        finder = WikipediaSynonymFinder(wiki, catalog)
        for entity in catalog:
            entry = finder.find_one(entity.canonical_name)
            assert len(entry.synonyms) == len(set(entry.synonyms))

    def test_low_camera_coverage_flows_through(self):
        catalog = camera_catalog(size=300, seed=13)
        table = build_alias_table(catalog, seed=13)
        wiki = SimulatedWikipedia.build(catalog, table, CAMERA_WIKIPEDIA_CONFIG)
        finder = WikipediaSynonymFinder(wiki, catalog)
        result = finder.find(entity.canonical_name for entity in catalog)
        assert result.hit_ratio() < 0.35
