"""Tests for the co-click query-similarity baseline."""

import pytest

from repro.baselines.coclick import CoClickConfig, CoClickSynonymFinder
from repro.clicklog.log import ClickLog


@pytest.fixture()
def click_log():
    return ClickLog.from_tuples(
        [
            # "indy 4" and "indiana jones 4" co-click the same two pages.
            ("indy 4", "https://a.example", 50),
            ("indy 4", "https://b.example", 50),
            ("indiana jones 4", "https://a.example", 40),
            ("indiana jones 4", "https://b.example", 40),
            # "windows vista" and "pc" co-click a help page: related but not
            # synonyms — the failure mode the paper attributes to similarity
            # approaches.
            ("windows vista", "https://help.example", 30),
            ("pc", "https://help.example", 60),
            ("pc", "https://shop.example", 200),
            # The canonical camera name never occurs as a query.
            ("digital rebel xt", "https://cam.example", 25),
        ]
    )


class TestConfig:
    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            CoClickConfig(similarity_threshold=1.5)

    def test_invalid_max_synonyms(self):
        with pytest.raises(ValueError):
            CoClickConfig(max_synonyms=0)


class TestSimilarity:
    def test_identical_click_profiles_score_high(self, click_log):
        finder = CoClickSynonymFinder(click_log)
        assert finder.similarity("indy 4", "indiana jones 4") > 0.7

    def test_disjoint_profiles_score_zero(self, click_log):
        finder = CoClickSynonymFinder(click_log)
        assert finder.similarity("indy 4", "pc") == 0.0

    def test_unknown_query_scores_zero(self, click_log):
        finder = CoClickSynonymFinder(click_log)
        assert finder.similarity("indy 4", "never asked") == 0.0

    def test_unweighted_jaccard(self, click_log):
        finder = CoClickSynonymFinder(click_log, CoClickConfig(weighted=False))
        assert finder.similarity("windows vista", "pc") == pytest.approx(0.5)

    def test_weighted_similarity_penalises_volume_mismatch(self, click_log):
        weighted = CoClickSynonymFinder(click_log, CoClickConfig(weighted=True))
        unweighted = CoClickSynonymFinder(click_log, CoClickConfig(weighted=False))
        assert weighted.similarity("windows vista", "pc") < unweighted.similarity(
            "windows vista", "pc"
        )

    def test_symmetry(self, click_log):
        finder = CoClickSynonymFinder(click_log)
        assert finder.similarity("indy 4", "indiana jones 4") == pytest.approx(
            finder.similarity("indiana jones 4", "indy 4")
        )


class TestNeighbours:
    def test_neighbours_sorted_by_score(self, click_log):
        finder = CoClickSynonymFinder(click_log)
        neighbours = finder.neighbours("pc")
        scores = [score for _query, score in neighbours]
        assert scores == sorted(scores, reverse=True)

    def test_self_excluded(self, click_log):
        finder = CoClickSynonymFinder(click_log)
        assert all(query != "indy 4" for query, _score in finder.neighbours("indy 4"))

    def test_unknown_query_has_no_neighbours(self, click_log):
        finder = CoClickSynonymFinder(click_log)
        assert finder.neighbours("canox eon 350d") == []


class TestPaperFailureModes:
    def test_related_but_not_synonym_is_reported(self, click_log):
        # The baseline happily reports "pc" as similar to "windows vista":
        # that is the precision problem the paper points out.
        finder = CoClickSynonymFinder(click_log, CoClickConfig(similarity_threshold=0.1))
        entry = finder.find_one("windows vista")
        assert "pc" in entry.synonyms

    def test_unqueried_canonical_produces_nothing(self, click_log):
        # The coverage problem: a canonical value that never occurs as a
        # query has no click profile and therefore no neighbours.
        finder = CoClickSynonymFinder(click_log)
        assert not finder.find_one("canox eon 350d").has_synonyms

    def test_true_synonym_also_found(self, click_log):
        finder = CoClickSynonymFinder(click_log)
        assert "indiana jones 4" in finder.find_one("indy 4").synonyms

    def test_max_synonyms_cap(self, click_log):
        finder = CoClickSynonymFinder(
            click_log, CoClickConfig(similarity_threshold=0.0, max_synonyms=1)
        )
        assert len(finder.find_one("pc").selected) <= 1

    def test_find_many_shape(self, click_log):
        finder = CoClickSynonymFinder(click_log)
        result = finder.find(["indy 4", "canox eon 350d"])
        assert len(result) == 2
        assert result.hit_count == 1
