"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.storage.jsonl import read_jsonl


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self, tmp_path):
        args = build_parser().parse_args(["simulate", "--output", str(tmp_path)])
        assert args.dataset == "toy"
        assert args.command == "simulate"

    def test_mine_thresholds(self, tmp_path):
        args = build_parser().parse_args(
            [
                "mine",
                "--search", "s.jsonl", "--clicks", "c.jsonl", "--values", "v.txt",
                "--output", "out.jsonl", "--ipc", "6", "--icr", "0.4",
            ]
        )
        assert args.ipc == 6 and args.icr == pytest.approx(0.4)

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_server_defaults(self):
        from repro.server.daemon import DEFAULT_PORT

        args = build_parser().parse_args(["server", "--artifact", "d.synart"])
        assert args.command == "server"
        assert args.host == "127.0.0.1"
        assert args.port == DEFAULT_PORT
        assert args.watch_interval == pytest.approx(2.0)
        assert args.max_batch == 1024

    def test_compile_accepts_priors_source(self):
        args = build_parser().parse_args(
            ["compile", "--synonyms", "s.jsonl", "--output", "d.synart",
             "--priors", "clicks.jsonl"]
        )
        assert str(args.priors) == "clicks.jsonl"


class TestEndToEndWorkflow:
    @pytest.fixture(scope="class")
    def workdir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("cli")

    @pytest.fixture(scope="class")
    def simulated(self, workdir):
        exit_code = main(
            [
                "simulate", "--dataset", "toy", "--entities", "10",
                "--sessions", "3000", "--output", str(workdir / "logs"),
            ]
        )
        assert exit_code == 0
        return workdir / "logs"

    def test_simulate_writes_all_artifacts(self, simulated):
        for name in ("search_data.jsonl", "click_data.jsonl", "catalog.jsonl", "values.txt"):
            assert (simulated / name).exists(), name
        assert len(list(read_jsonl(simulated / "catalog.jsonl"))) == 10

    @pytest.fixture(scope="class")
    def mined(self, simulated, workdir):
        output = workdir / "synonyms.jsonl"
        exit_code = main(
            [
                "mine",
                "--search", str(simulated / "search_data.jsonl"),
                "--clicks", str(simulated / "click_data.jsonl"),
                "--values", str(simulated / "values.txt"),
                "--output", str(output),
                "--database", str(workdir / "synonyms.db"),
                "--ipc", "3", "--icr", "0.1",
            ]
        )
        assert exit_code == 0
        return output

    def test_mine_produces_synonym_rows(self, mined):
        rows = list(read_jsonl(mined))
        assert rows, "expected at least one mined synonym"
        assert {"canonical", "synonym", "ipc", "icr", "clicks"} <= set(rows[0])
        assert all(row["ipc"] >= 3 for row in rows)

    def test_mine_persists_database(self, mined, workdir):
        from repro.storage.sqlite_store import LogDatabase

        with LogDatabase(workdir / "synonyms.db") as database:
            assert database.count("synonyms") == len(list(read_jsonl(mined)))

    def test_match_resolves_mined_synonym(self, mined, capsys):
        rows = list(read_jsonl(mined))
        query = rows[0]["synonym"]
        exit_code = main(["match", "--synonyms", str(mined), query])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert payload["matched"] is True
        assert rows[0]["canonical"] in payload["entities"]

    def test_match_reports_unmatched_query(self, mined, capsys):
        exit_code = main(["match", "--synonyms", str(mined), "--no-fuzzy", "zzz unmatched zzz"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["matched"] is False
        assert payload["entities"] == []

    def test_match_reads_queries_from_stdin(self, mined, capsys, monkeypatch):
        import io

        rows = list(read_jsonl(mined))
        monkeypatch.setattr("sys.stdin", io.StringIO(rows[0]["synonym"] + "\n"))
        assert main(["match", "--synonyms", str(mined)]) == 0
        assert json.loads(capsys.readouterr().out.strip())["matched"] is True


class TestBatchMineCLI:
    @pytest.fixture(scope="class")
    def workdir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("cli-batch")

    @pytest.fixture(scope="class")
    def simulated(self, workdir):
        assert main(
            [
                "simulate", "--dataset", "toy", "--entities", "10",
                "--sessions", "3000", "--output", str(workdir / "logs"),
            ]
        ) == 0
        return workdir / "logs"

    def _mine(self, simulated, output, *extra):
        args = [
            "mine",
            "--search", str(simulated / "search_data.jsonl"),
            "--clicks", str(simulated / "click_data.jsonl"),
            "--values", str(simulated / "values.txt"),
            "--output", str(output),
            "--ipc", "3", "--icr", "0.1",
            *extra,
        ]
        assert main(args) == 0
        return list(read_jsonl(output))

    def test_workers_flag_matches_serial_output(self, simulated, workdir, capsys):
        serial_rows = self._mine(simulated, workdir / "serial.jsonl")
        batch_rows = self._mine(
            simulated, workdir / "batch.jsonl",
            "--workers", "2", "--shard-size", "3",
        )
        assert batch_rows == serial_rows
        assert "profile cache hit rate" in capsys.readouterr().out

    def test_workers_with_process_backend(self, simulated, workdir):
        serial_rows = self._mine(simulated, workdir / "serial2.jsonl")
        process_rows = self._mine(
            simulated, workdir / "process.jsonl",
            "--workers", "2", "--backend", "process",
        )
        assert process_rows == serial_rows

    def test_batch_flags_without_workers_rejected(self, simulated, workdir):
        with pytest.raises(SystemExit, match="require --workers"):
            self._mine(simulated, workdir / "orphan.jsonl", "--backend", "process")
        with pytest.raises(SystemExit, match="require --workers"):
            self._mine(simulated, workdir / "orphan.jsonl", "--shard-size", "10")

    def test_parser_accepts_batch_flags(self):
        args = build_parser().parse_args(
            [
                "mine", "--search", "s", "--clicks", "c", "--values", "v",
                "--output", "o", "--workers", "4", "--shard-size", "100",
                "--backend", "process",
            ]
        )
        assert args.workers == 4 and args.shard_size == 100 and args.backend == "process"


class TestCompileAndServeCLI:
    @pytest.fixture(scope="class")
    def workdir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("cli-serve")

    @pytest.fixture(scope="class")
    def simulated(self, workdir):
        assert main(
            [
                "simulate", "--dataset", "toy", "--entities", "10",
                "--sessions", "3000", "--output", str(workdir / "logs"),
            ]
        ) == 0
        return workdir / "logs"

    @pytest.fixture(scope="class")
    def mined(self, simulated, workdir):
        output = workdir / "synonyms.jsonl"
        assert main(
            [
                "mine",
                "--search", str(simulated / "search_data.jsonl"),
                "--clicks", str(simulated / "click_data.jsonl"),
                "--values", str(simulated / "values.txt"),
                "--output", str(output),
                "--ipc", "3", "--icr", "0.1",
            ]
        ) == 0
        return output

    @pytest.fixture(scope="class")
    def compiled(self, mined, workdir):
        artifact = workdir / "dict.synart"
        assert main(
            [
                "compile", "--synonyms", str(mined),
                "--output", str(artifact), "--version-label", "cli-v1",
            ]
        ) == 0
        return artifact

    def test_compile_writes_valid_artifact(self, compiled):
        from repro.serving.artifact import SynonymArtifact

        manifest = SynonymArtifact.peek_manifest(compiled)
        assert manifest.version == "cli-v1"
        assert manifest.counts["entries"] > 0

    def test_match_artifact_equals_match_synonyms(self, mined, compiled, capsys):
        rows = list(read_jsonl(mined))
        queries = sorted({row["synonym"] for row in rows})[:10]
        assert main(["match", "--synonyms", str(mined), *queries]) == 0
        from_jsonl = capsys.readouterr().out
        assert main(["match", "--artifact", str(compiled), *queries]) == 0
        from_artifact = capsys.readouterr().out
        assert from_artifact == from_jsonl
        assert '"matched": true' in from_artifact

    def test_match_requires_exactly_one_source(self, mined, compiled):
        with pytest.raises(SystemExit):
            main(["match", "some query"])
        with pytest.raises(SystemExit):
            main(
                [
                    "match", "--synonyms", str(mined),
                    "--artifact", str(compiled), "some query",
                ]
            )

    def test_match_stdin_reports_ambiguous_entities(self, workdir, capsys, monkeypatch):
        import io

        # One synonym shared by two canonicals: the match must surface both
        # entity ids, exactly as a result page would show both candidates.
        ambiguous = workdir / "ambiguous.jsonl"
        with ambiguous.open("w", encoding="utf-8") as handle:
            for canonical in ("alpha movie", "alpha camera"):
                handle.write(
                    json.dumps(
                        {
                            "canonical": canonical, "synonym": "alpha",
                            "ipc": 5, "icr": 0.5, "clicks": 10,
                        }
                    )
                    + "\n"
                )
        monkeypatch.setattr("sys.stdin", io.StringIO("alpha\n"))
        assert main(["match", "--synonyms", str(ambiguous)]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["matched"] is True
        assert payload["outcome"] == "exact"
        assert payload["entities"] == ["alpha camera", "alpha movie"]

    def test_serve_from_query_file(self, mined, compiled, workdir, capsys):
        rows = list(read_jsonl(mined))
        queries_file = workdir / "queries.txt"
        queries_file.write_text(
            rows[0]["synonym"] + "\n\n" + "unmatched zzz query\n", encoding="utf-8"
        )
        assert main(
            ["serve", "--artifact", str(compiled), "--queries", str(queries_file)]
        ) == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert len(lines) == 2
        assert lines[0]["matched"] is True
        assert lines[1]["matched"] is False
        assert "latency p50" in captured.err
        assert "artifact version cli-v1" in captured.err

    def test_serve_reads_stdin(self, mined, compiled, capsys, monkeypatch):
        import io

        rows = list(read_jsonl(mined))
        monkeypatch.setattr("sys.stdin", io.StringIO(rows[0]["synonym"] + "\n"))
        assert main(["serve", "--artifact", str(compiled)]) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out.strip())["matched"] is True

    def test_serve_cache_hits_reported(self, mined, compiled, workdir, capsys):
        rows = list(read_jsonl(mined))
        queries_file = workdir / "repeat.txt"
        queries_file.write_text((rows[0]["synonym"] + "\n") * 5, encoding="utf-8")
        assert main(
            ["serve", "--artifact", str(compiled), "--queries", str(queries_file)]
        ) == 0
        assert "cache hit rate 80.0% (4/5)" in capsys.readouterr().err

    def test_serve_watch_hot_swaps(self, mined, compiled, workdir, capsys, monkeypatch):
        import io

        from repro.matching.dictionary import DictionaryEntry, SynonymDictionary
        from repro.serving.artifact import compile_dictionary

        artifact = workdir / "swap.synart"
        compile_dictionary(
            SynonymDictionary([DictionaryEntry("old synonym", "e1", "mined", 5.0)]),
            artifact,
            version="gen-1",
        )

        def feeding_stdin():
            text = "".join(["old synonym\n", "fresh synonym\n"])
            return io.StringIO(text)

        # Republish between the two queries by hooking the reload poll: the
        # first maybe_reload sees gen-1, then we atomically replace the file.
        republished = {"done": False}
        from repro.serving.service import MatchService

        original = MatchService.maybe_reload

        def republish_then_poll(self):
            result = original(self)
            if not republished["done"]:
                republished["done"] = True
                compile_dictionary(
                    SynonymDictionary(
                        [DictionaryEntry("fresh synonym", "e2", "mined", 9.0)]
                    ),
                    artifact,
                    version="gen-2",
                )
            return result

        monkeypatch.setattr(MatchService, "maybe_reload", republish_then_poll)
        monkeypatch.setattr("sys.stdin", feeding_stdin())
        assert main(["serve", "--artifact", str(artifact), "--watch"]) == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert lines[0]["matched"] is True          # served by gen-1
        assert lines[1]["entities"] == ["e2"]       # served by gen-2 after swap
        assert "reloads 1" in captured.err
        assert "artifact version gen-2" in captured.err

    def test_serve_rejects_negative_cache_size(self, compiled):
        with pytest.raises(SystemExit, match="cache-size"):
            main(["serve", "--artifact", str(compiled), "--cache-size", "-1"])

    def test_compile_priors_embeds_click_priors(self, mined, simulated, workdir, capsys):
        from repro.serving.artifact import SynonymArtifact

        artifact = workdir / "priored.synart"
        assert main(
            [
                "compile", "--synonyms", str(mined),
                "--output", str(artifact),
                "--priors", str(simulated / "click_data.jsonl"),
            ]
        ) == 0
        assert "entity priors" in capsys.readouterr().out
        loaded = SynonymArtifact.load(artifact)
        assert loaded.has_priors is True
        priors = loaded.priors()
        assert priors and any(value > 0 for value in priors.values())

    def test_serve_interrupt_flushes_summary(self, mined, compiled, capsys, monkeypatch):
        """Ctrl-C mid-stream: summary still flushed, exit code 0, no traceback."""
        rows = list(read_jsonl(mined))

        class InterruptedStdin:
            def __init__(self):
                self._lines = iter([rows[0]["synonym"] + "\n"])

            def __iter__(self):
                return self

            def __next__(self):
                try:
                    return next(self._lines)
                except StopIteration:
                    raise KeyboardInterrupt

        monkeypatch.setattr("sys.stdin", InterruptedStdin())
        assert main(["serve", "--artifact", str(compiled)]) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out.strip())["matched"] is True
        assert "served 1 queries" in captured.err
        assert "stopped by" in captured.err

    def test_server_rejects_bad_flags(self, compiled):
        with pytest.raises(SystemExit, match="cache-size"):
            main(["server", "--artifact", str(compiled), "--cache-size", "-1"])
        with pytest.raises(SystemExit, match="watch-interval"):
            main(["server", "--artifact", str(compiled), "--watch-interval", "-2"])
