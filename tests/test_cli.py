"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.storage.jsonl import read_jsonl


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self, tmp_path):
        args = build_parser().parse_args(["simulate", "--output", str(tmp_path)])
        assert args.dataset == "toy"
        assert args.command == "simulate"

    def test_mine_thresholds(self, tmp_path):
        args = build_parser().parse_args(
            [
                "mine",
                "--search", "s.jsonl", "--clicks", "c.jsonl", "--values", "v.txt",
                "--output", "out.jsonl", "--ipc", "6", "--icr", "0.4",
            ]
        )
        assert args.ipc == 6 and args.icr == pytest.approx(0.4)

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestEndToEndWorkflow:
    @pytest.fixture(scope="class")
    def workdir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("cli")

    @pytest.fixture(scope="class")
    def simulated(self, workdir):
        exit_code = main(
            [
                "simulate", "--dataset", "toy", "--entities", "10",
                "--sessions", "3000", "--output", str(workdir / "logs"),
            ]
        )
        assert exit_code == 0
        return workdir / "logs"

    def test_simulate_writes_all_artifacts(self, simulated):
        for name in ("search_data.jsonl", "click_data.jsonl", "catalog.jsonl", "values.txt"):
            assert (simulated / name).exists(), name
        assert len(list(read_jsonl(simulated / "catalog.jsonl"))) == 10

    @pytest.fixture(scope="class")
    def mined(self, simulated, workdir):
        output = workdir / "synonyms.jsonl"
        exit_code = main(
            [
                "mine",
                "--search", str(simulated / "search_data.jsonl"),
                "--clicks", str(simulated / "click_data.jsonl"),
                "--values", str(simulated / "values.txt"),
                "--output", str(output),
                "--database", str(workdir / "synonyms.db"),
                "--ipc", "3", "--icr", "0.1",
            ]
        )
        assert exit_code == 0
        return output

    def test_mine_produces_synonym_rows(self, mined):
        rows = list(read_jsonl(mined))
        assert rows, "expected at least one mined synonym"
        assert {"canonical", "synonym", "ipc", "icr", "clicks"} <= set(rows[0])
        assert all(row["ipc"] >= 3 for row in rows)

    def test_mine_persists_database(self, mined, workdir):
        from repro.storage.sqlite_store import LogDatabase

        with LogDatabase(workdir / "synonyms.db") as database:
            assert database.count("synonyms") == len(list(read_jsonl(mined)))

    def test_match_resolves_mined_synonym(self, mined, capsys):
        rows = list(read_jsonl(mined))
        query = rows[0]["synonym"]
        exit_code = main(["match", "--synonyms", str(mined), query])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert payload["matched"] is True
        assert rows[0]["canonical"] in payload["entities"]

    def test_match_reports_unmatched_query(self, mined, capsys):
        exit_code = main(["match", "--synonyms", str(mined), "--no-fuzzy", "zzz unmatched zzz"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["matched"] is False
        assert payload["entities"] == []

    def test_match_reads_queries_from_stdin(self, mined, capsys, monkeypatch):
        import io

        rows = list(read_jsonl(mined))
        monkeypatch.setattr("sys.stdin", io.StringIO(rows[0]["synonym"] + "\n"))
        assert main(["match", "--synonyms", str(mined)]) == 0
        assert json.loads(capsys.readouterr().out.strip())["matched"] is True


class TestBatchMineCLI:
    @pytest.fixture(scope="class")
    def workdir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("cli-batch")

    @pytest.fixture(scope="class")
    def simulated(self, workdir):
        assert main(
            [
                "simulate", "--dataset", "toy", "--entities", "10",
                "--sessions", "3000", "--output", str(workdir / "logs"),
            ]
        ) == 0
        return workdir / "logs"

    def _mine(self, simulated, output, *extra):
        args = [
            "mine",
            "--search", str(simulated / "search_data.jsonl"),
            "--clicks", str(simulated / "click_data.jsonl"),
            "--values", str(simulated / "values.txt"),
            "--output", str(output),
            "--ipc", "3", "--icr", "0.1",
            *extra,
        ]
        assert main(args) == 0
        return list(read_jsonl(output))

    def test_workers_flag_matches_serial_output(self, simulated, workdir, capsys):
        serial_rows = self._mine(simulated, workdir / "serial.jsonl")
        batch_rows = self._mine(
            simulated, workdir / "batch.jsonl",
            "--workers", "2", "--shard-size", "3",
        )
        assert batch_rows == serial_rows
        assert "profile cache hit rate" in capsys.readouterr().out

    def test_workers_with_process_backend(self, simulated, workdir):
        serial_rows = self._mine(simulated, workdir / "serial2.jsonl")
        process_rows = self._mine(
            simulated, workdir / "process.jsonl",
            "--workers", "2", "--backend", "process",
        )
        assert process_rows == serial_rows

    def test_batch_flags_without_workers_rejected(self, simulated, workdir):
        with pytest.raises(SystemExit, match="require --workers"):
            self._mine(simulated, workdir / "orphan.jsonl", "--backend", "process")
        with pytest.raises(SystemExit, match="require --workers"):
            self._mine(simulated, workdir / "orphan.jsonl", "--shard-size", "10")

    def test_parser_accepts_batch_flags(self):
        args = build_parser().parse_args(
            [
                "mine", "--search", "s", "--clicks", "c", "--values", "v",
                "--output", "o", "--workers", "4", "--shard-size", "100",
                "--backend", "process",
            ]
        )
        assert args.workers == 4 and args.shard_size == 100 and args.backend == "process"
