"""Self-hosting: the analyzer keeps its own repository clean.

This is the enforcement half of the CI `static-analysis` job, runnable
locally: `src/` must produce zero findings, the committed fixture corpus
must fail, and the CLI must report both through its exit code.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import analyze_paths
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
FIXTURES = Path(__file__).parent / "fixtures"


def test_src_tree_is_clean() -> None:
    findings = analyze_paths([SRC])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_cli_exit_zero_on_clean_tree(capsys: pytest.CaptureFixture) -> None:
    assert main(["analyze", str(SRC)]) == 0
    assert capsys.readouterr().out.strip() == "no findings"


def test_cli_exit_nonzero_on_fixture_corpus(
    capsys: pytest.CaptureFixture,
) -> None:
    assert main(["analyze", str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "findings" in out.splitlines()[-1]


def test_cli_json_format(capsys: pytest.CaptureFixture) -> None:
    assert main(["analyze", "--format", "json", str(FIXTURES)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == 1
    assert payload["count"] == len(payload["findings"]) > 0


def test_cli_list_rules(capsys: pytest.CaptureFixture) -> None:
    assert main(["analyze", "--list-rules"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    ids = [line.split(":", 1)[0] for line in lines]
    assert "lock-guarded-attr" in ids
    assert ids == sorted(ids)


def test_cli_missing_path_errors() -> None:
    with pytest.raises(SystemExit, match="no such path"):
        main(["analyze", "does/not/exist.py"])


def test_default_paths_is_src() -> None:
    from repro.cli import build_parser

    args = build_parser().parse_args(["analyze"])
    assert args.paths == ["src"]
