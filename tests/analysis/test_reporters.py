"""Reporter output pinned: text shape and the versioned JSON schema."""

from __future__ import annotations

import json

from repro.analysis.engine import Finding
from repro.analysis.reporters import JSON_FORMAT_VERSION, render_json, render_text

FINDINGS = [
    Finding(
        path="src/a.py", line=3, col=4, rule="lock-guarded-attr", message="m1"
    ),
    Finding(
        path="src/b.py", line=9, col=0, rule="explicit-endian", message="m2"
    ),
]


def test_text_lists_each_finding_and_tally() -> None:
    text = render_text(FINDINGS)
    lines = text.splitlines()
    assert lines[0] == "src/a.py:3:4: lock-guarded-attr: m1"
    assert lines[1] == "src/b.py:9:0: explicit-endian: m2"
    assert lines[2] == "2 findings"


def test_text_singular_tally() -> None:
    assert render_text(FINDINGS[:1]).splitlines()[-1] == "1 finding"


def test_text_empty() -> None:
    assert render_text([]) == "no findings"


def test_json_schema() -> None:
    payload = json.loads(render_json(FINDINGS))
    assert payload["format"] == JSON_FORMAT_VERSION == 1
    assert payload["count"] == 2
    assert payload["findings"] == [
        {
            "path": "src/a.py",
            "line": 3,
            "col": 4,
            "rule": "lock-guarded-attr",
            "message": "m1",
        },
        {
            "path": "src/b.py",
            "line": 9,
            "col": 0,
            "rule": "explicit-endian",
            "message": "m2",
        },
    ]


def test_json_empty_is_valid_and_zero() -> None:
    payload = json.loads(render_json([]))
    assert payload == {"format": 1, "count": 0, "findings": []}
