"""Pinned regression tests for the true positives the analyzer found in src/.

Each test here pins one concrete bug that ``python -m repro analyze`` flagged
when it was first run against the repository, so the fixes cannot silently
regress:

* ``LatencyHistogram.count`` read ``_count`` outside the histogram lock
  (torn read against ``record()`` on another thread).
* ``FrozenClickIndex.cache_stats`` read ``_hits``/``_misses`` outside the
  cache lock (a snapshot could pair a new ``hits`` with a stale ``misses``).
* ``merge_state`` iterated a bare set of entity ids when rebuilding the
  priors table, making the priors dict order depend on hash seeding.

Each behavioural pin is paired with a structural pin: re-analyzing the fixed
module must stay clean for the rule that caught the original bug, so undoing
the fix trips the analyzer (and the self-clean test) again.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.analysis import analyze_paths
from repro.core.batch import FrozenClickIndex
from repro.serving.delta import _DeltaSpec, merge_state
from repro.server.metrics import LatencyHistogram

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def _findings_for(relpath: str, rule: str) -> list:
    findings = analyze_paths([REPO_SRC / relpath])
    return [finding for finding in findings if finding.rule == rule]


class TestHistogramCountUnderLock:
    def test_count_is_exact_under_concurrent_records(self):
        histogram = LatencyHistogram()
        per_thread, threads = 2000, 4

        def hammer() -> None:
            for _ in range(per_thread):
                histogram.record(0.001)

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        # Reads racing the writers must never go backwards or overshoot.
        last = 0
        while any(worker.is_alive() for worker in workers):
            current = histogram.count
            assert last <= current <= per_thread * threads
            last = current
        for worker in workers:
            worker.join()
        assert histogram.count == per_thread * threads

    def test_metrics_module_stays_lock_clean(self):
        assert _findings_for("repro/server/metrics.py", "lock-guarded-attr") == []


class TestCacheStatsUnderLock:
    def test_snapshot_totals_never_regress(self, mini_click_log, mini_search_log):
        index = FrozenClickIndex.from_logs(mini_click_log, mini_search_log)
        queries = list(mini_click_log.queries())
        stop = threading.Event()

        def lookups() -> None:
            for _ in range(300):
                for query in queries:
                    index.candidate_profile(query)
            stop.set()

        worker = threading.Thread(target=lookups)
        worker.start()
        last_total = 0
        while not stop.is_set():
            stats = index.cache_stats
            total = stats.hits + stats.misses
            assert total >= last_total
            last_total = total
        worker.join()
        stats = index.cache_stats
        assert stats.hits + stats.misses == 300 * len(queries)
        # Every query past its first lookup hits the per-query cache.
        assert stats.misses == len(queries)

    def test_batch_module_stays_lock_clean(self):
        assert _findings_for("repro/core/batch.py", "lock-guarded-attr") == []


class TestMergeStatePriorsOrder:
    BASE = [
        ("zeta alias", "zeta", "mined", 0.5),
        ("mu alias", "mu", "mined", 0.4),
        ("alpha alias", "alpha", "mined", 0.3),
    ]
    PRIORS = {"zeta": 0.9, "mu": 0.6, "alpha": 0.2}

    def test_priors_order_is_sorted_not_hash_order(self):
        delta = _DeltaSpec(
            changed=[("omega", [("omega alias", "omega", "mined", 0.7)])],
            removed=["mu"],
            prior_updates={"omega": 0.8},
        )
        merged, priors = merge_state(self.BASE, self.PRIORS, delta)
        assert priors is not None
        assert list(priors) == sorted(priors)
        assert {entry[1] for entry in merged} == set(priors)

    def test_merge_is_reproducible_across_calls(self):
        delta = _DeltaSpec(changed=[], removed=[], prior_updates={})
        first = merge_state(self.BASE, self.PRIORS, delta)
        second = merge_state(list(reversed(self.BASE))[::-1], dict(self.PRIORS), delta)
        assert first == second

    def test_delta_module_stays_set_iteration_clean(self):
        assert _findings_for("repro/serving/delta.py", "unordered-set-iteration") == []
