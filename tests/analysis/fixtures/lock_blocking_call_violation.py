"""Fixture: blocking calls made while a lock is held."""

import os
import threading
import time


class SlowUnderLock:
    def __init__(self, stream) -> None:
        self._lock = threading.Lock()
        self._stream = stream

    def publish(self, src: str, dst: str) -> None:
        with self._lock:
            time.sleep(0.01)  # VIOLATION: lock-blocking-call
            os.replace(src, dst)  # VIOLATION: lock-blocking-call

    def log(self, line: str) -> None:
        with self._lock:
            self._stream.write(line)  # VIOLATION: lock-blocking-call
            self._stream.flush()  # VIOLATION: lock-blocking-call
