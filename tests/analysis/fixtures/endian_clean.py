# repro: module(repro.storage.artifact)
"""Fixture: explicit little-endian formats throughout."""

import struct

_HEADER = struct.Struct("<8sII")


def pack_length(length: int) -> bytes:
    return struct.pack("<Q", length)


def read_count(raw: bytes) -> int:
    (count,) = struct.unpack("<I", raw[:4])
    return count
