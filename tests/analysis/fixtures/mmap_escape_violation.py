"""Fixture: cast views escaping their function without adopt()."""


class BlockReader:
    def __init__(self, mapping) -> None:
        self._mapping = mapping
        self._cached = None

    def offsets(self, block: memoryview):
        view = block.cast("Q")
        return view  # VIOLATION: mmap-view-escape (unadopted return)

    def cache_entities(self, block: memoryview) -> None:
        self._cached = block.cast("I")  # VIOLATION: mmap-view-escape (raw self-store)

    def weights(self, block: memoryview):
        return block.cast("d")  # VIOLATION: mmap-view-escape (raw return)
