# repro: module(repro.storage.artifact)
"""Fixture: native-endian packing in the artifact layer."""

import struct

_HEADER = struct.Struct("8sII")  # VIOLATION: explicit-endian


def pack_length(length: int) -> bytes:
    return struct.pack("Q", length)  # VIOLATION: explicit-endian


def read_count(raw: bytes) -> int:
    (count,) = struct.unpack("I", raw[:4])  # VIOLATION: explicit-endian
    return count


def typed_view(block: memoryview) -> memoryview:
    view = block.cast("I")  # VIOLATION: explicit-endian (native-only cast)
    values = list(view)
    view.release()
    return memoryview(bytes(values))
