"""Fixture: the blessed shapes — I/O outside the lock, containers inside."""

import os
import threading
import time


class FastUnderLock:
    def __init__(self, stream) -> None:
        self._lock = threading.Lock()
        self._stream = stream
        self._pending = {}

    def publish(self, src: str, dst: str) -> None:
        time.sleep(0.01)  # outside the lock: fine
        os.replace(src, dst)
        with self._lock:
            # Container methods are not blocking I/O.
            self._pending.pop(src, None)

    def log(self, line: str) -> None:
        with self._lock:
            pending = self._pending.get(line)
        if pending is None:
            self._stream.write(line)
            self._stream.flush()

    def closure_runs_later(self):
        with self._lock:
            def flush() -> None:
                # The closure body executes after the lock is released.
                self._stream.flush()
        return flush
