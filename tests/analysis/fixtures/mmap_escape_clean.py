"""Fixture: every escaping cast view is registered with adopt()."""


class BlockReader:
    def __init__(self, mapping) -> None:
        self._mapping = mapping
        self._cached = None

    def offsets(self, block: memoryview):
        view = block.cast("Q")
        return self._mapping.adopt(view)

    def cache_entities(self, block: memoryview) -> None:
        view = block.cast("I")
        self._mapping.adopt(view)
        self._cached = view

    def weights(self, block: memoryview):
        return self._mapping.adopt(block.cast("d"))

    def checksum(self, block: memoryview) -> int:
        # A view that never leaves the function needs no adoption.
        view = block.cast("I")
        return sum(view)
