# repro: module(repro.serving.delta)
"""Fixture: set values ordered before they reach an output sequence."""


def merged_ids(entries):
    out = []
    for entity_id in sorted({entry[1] for entry in entries}):
        out.append(entity_id)
    return out


def as_list(names):
    return sorted(set(names))


def membership_only(names, needle):
    # Sets used for membership (not iteration order) are fine.
    seen = {name.lower() for name in names}
    return needle in seen
