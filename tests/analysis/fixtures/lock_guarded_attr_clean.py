"""Fixture: the same counter shapes, with the discipline followed."""

import threading


class SnapshotCounter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0
        self._slots = [0] * 8
        self._limit = 8  # never assigned under the lock: unguarded

    def record(self, index: int) -> None:
        with self._lock:
            self._count += 1
            # Subscript stores do not mark `_slots` as guarded: mutating
            # one slot is a different judgement than replacing the binding.
            self._slots[index] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> tuple[int, list[int]]:
        with self._lock:
            return self._count, list(self._slots)

    def limit(self) -> int:
        return self._limit


class NoLocks:
    """No lock attribute in __init__: the rule stays out entirely."""

    def __init__(self) -> None:
        self._count = 0

    def bump(self) -> None:
        self._count += 1
