"""Fixture: a lock-guarded attribute read and written outside the lock."""

import threading


class TornCounter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0
        self._total = 0.0

    def record(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._total += value

    @property
    def count(self) -> int:
        return self._count  # VIOLATION: lock-guarded-attr (unlocked read)

    def reset(self) -> None:
        self._total = 0.0  # VIOLATION: lock-guarded-attr (unlocked write)
