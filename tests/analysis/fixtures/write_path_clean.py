# repro: module(repro.serving.publisher)
"""Fixture: serving-layer persistence through the blessed publish path."""

from pathlib import Path

from repro.storage.artifact import write_artifact


def publish(path: str, manifest, blocks) -> None:
    write_artifact(path, manifest, blocks)


def read_manifest_text(path: Path) -> str:
    with path.open("r", encoding="utf-8") as handle:
        return handle.read()


def read_blob(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()
