# repro: module(repro.scenarios.workload)
"""Fixture: real violations silenced by `# repro: allow(<rule>)`."""

import threading
import time


def stamp() -> float:
    # repro: allow(nondeterministic-call) comment-above form
    return time.time()


def also_stamped() -> float:
    return time.time()  # repro: allow(nondeterministic-call) same-line form


class Sleeper:
    def __init__(self) -> None:
        self._lock = threading.Lock()

    def nap(self) -> None:
        with self._lock:
            # repro: allow(lock-blocking-call) fixture exercises suppression
            time.sleep(0.0)

    def wrong_rule_id(self) -> None:
        with self._lock:
            # repro: allow(nondeterministic-call) wrong id: does NOT suppress
            time.sleep(0.0)  # VIOLATION: lock-blocking-call
