# repro: module(repro.serving.publisher)
"""Fixture: serving-layer writes bypassing write_artifact."""

import os
from pathlib import Path


def publish(path: str, blob: bytes) -> None:
    with open(path, "wb") as handle:  # VIOLATION: artifact-write-path
        handle.write(blob)


def swap(tmp: str, final: str) -> None:
    os.replace(tmp, final)  # VIOLATION: artifact-write-path


def dump_manifest(path: Path, text: str) -> None:
    path.write_text(text)  # VIOLATION: artifact-write-path


def append_journal(path: Path, line: str) -> None:
    with path.open("a", encoding="utf-8") as handle:  # VIOLATION: artifact-write-path
        handle.write(line)
