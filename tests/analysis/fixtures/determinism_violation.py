# repro: module(repro.scenarios.workload)
"""Fixture: nondeterminism inside a seed-pure module."""

import os
import random
import time


def stamp_rows(rows):
    stamped = []
    for row in rows:
        row = dict(row)
        row["ts"] = time.time()  # VIOLATION: nondeterministic-call
        row["token"] = os.urandom(8).hex()  # VIOLATION: nondeterministic-call
        row["jitter"] = random.random()  # VIOLATION: nondeterministic-call
        stamped.append(row)
    return stamped


def shuffled(rows):
    rng = random.Random()  # VIOLATION: nondeterministic-call (unseeded)
    rows = list(rows)
    rng.shuffle(rows)
    return rows


def fingerprint(rows):
    return hash(tuple(sorted(rows)))  # VIOLATION: nondeterministic-call
