# repro: module(repro.scenarios.workload)
"""Fixture: the seed-pure idioms the determinism rules bless."""

import hashlib
import random


def shuffled(rows, seed: int):
    rng = random.Random(f"{seed}:shuffle")
    rows = list(rows)
    rng.shuffle(rows)
    return rows


def fingerprint(rows) -> str:
    digest = hashlib.sha256()
    for row in sorted(rows):
        digest.update(repr(row).encode("utf-8"))
    return digest.hexdigest()


def methods_named_like_clocks(catalog):
    # Attribute calls that merely *end* in a banned name are not the
    # banned globals: catalog.time() is whatever catalog says it is.
    return catalog.time()
