# repro: module(repro.serving.delta)
"""Fixture: bare-set iteration feeding output sequences."""


def merged_ids(entries):
    out = []
    for entity_id in {entry[1] for entry in entries}:  # VIOLATION: unordered-set-iteration
        out.append(entity_id)
    return out


def as_list(names):
    return list(set(names))  # VIOLATION: unordered-set-iteration


def comprehension(names):
    return [name.upper() for name in frozenset(names)]  # VIOLATION: unordered-set-iteration
