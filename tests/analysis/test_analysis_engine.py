"""Engine mechanics: parsing, module names, suppressions, registry.

Deliberately runnable under plain pytest (no hypothesis) — this mirrors
the tier-1 dependency footprint, so the static-analysis job can run the
analyzer's own tests in a minimal environment.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    Rule,
    analyze_source,
    iter_python_files,
    registered_rules,
)

EXPECTED_RULE_IDS = [
    "artifact-write-path",
    "explicit-endian",
    "lock-blocking-call",
    "lock-guarded-attr",
    "mmap-view-escape",
    "nondeterministic-call",
    "unordered-set-iteration",
]


class TestModuleInfo:
    def test_module_name_from_src_layout(self) -> None:
        info = ModuleInfo.parse(
            Path("/somewhere/src/repro/serving/artifact.py"), "x = 1\n"
        )
        assert info.module == "repro.serving.artifact"

    def test_module_name_package_init(self) -> None:
        info = ModuleInfo.parse(
            Path("/somewhere/src/repro/serving/__init__.py"), "x = 1\n"
        )
        assert info.module == "repro.serving"

    def test_module_pragma_wins_over_path(self) -> None:
        source = "# repro: module(repro.scenarios.workload)\nx = 1\n"
        info = ModuleInfo.parse(Path("/tmp/fixture_file.py"), source)
        assert info.module == "repro.scenarios.workload"

    def test_module_name_outside_any_layout_is_stem(self) -> None:
        info = ModuleInfo.parse(Path("/tmp/loose_script.py"), "x = 1\n")
        assert info.module == "loose_script"

    def test_allows_collected_per_line(self) -> None:
        source = (
            "x = 1  # repro: allow(some-rule)\n"
            "# repro: allow(other-rule) with a reason\n"
            "y = 2\n"
        )
        info = ModuleInfo.parse(Path("f.py"), source)
        assert info.is_allowed("some-rule", 1)
        assert info.is_allowed("other-rule", 2)  # comment line itself
        assert info.is_allowed("other-rule", 3)  # statement below
        assert not info.is_allowed("some-rule", 3)
        assert not info.is_allowed("other-rule", 4)


class _AlwaysFire(Rule):
    """Test rule: one finding at line 1 of every module."""

    id = "always-fire"
    summary = "fires once per module"

    def check(self, module):
        yield Finding(
            path=str(module.path), line=1, col=0, rule=self.id, message="hit"
        )


class TestSuppression:
    def test_same_line_allow_suppresses(self) -> None:
        found = analyze_source(
            "x = 1  # repro: allow(always-fire)\n",
            path="f.py",
            rules=[_AlwaysFire()],
        )
        assert found == []

    def test_unrelated_allow_does_not_suppress(self) -> None:
        found = analyze_source(
            "x = 1  # repro: allow(other-rule)\n",
            path="f.py",
            rules=[_AlwaysFire()],
        )
        assert [f.rule for f in found] == ["always-fire"]

    def test_parse_error_becomes_finding(self) -> None:
        found = analyze_source("def broken(:\n", path="bad.py", rules=[])
        assert len(found) == 1
        assert found[0].rule == "parse-error"
        assert found[0].path == "bad.py"


class TestRegistry:
    def test_catalog_is_complete_and_sorted(self) -> None:
        rules = registered_rules()
        assert [rule.id for rule in rules] == EXPECTED_RULE_IDS

    def test_registered_rules_is_stable(self) -> None:
        first = registered_rules()
        second = registered_rules()
        assert [r.id for r in first] == [r.id for r in second]

    def test_every_rule_has_a_summary(self) -> None:
        for rule in registered_rules():
            assert rule.summary, rule.id


class TestDriver:
    def test_iter_python_files_dedups_and_expands(self, tmp_path: Path) -> None:
        (tmp_path / "pkg").mkdir()
        a = tmp_path / "pkg" / "a.py"
        b = tmp_path / "pkg" / "b.py"
        a.write_text("x = 1\n")
        b.write_text("y = 2\n")
        (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
        files = list(iter_python_files([tmp_path, a]))
        assert sorted(f.name for f in files) == ["a.py", "b.py"]

    def test_finding_format_shape(self) -> None:
        finding = Finding(
            path="src/x.py", line=3, col=7, rule="some-rule", message="boom"
        )
        assert finding.format() == "src/x.py:3:7: some-rule: boom"

    def test_findings_sort_by_location(self) -> None:
        early = Finding(path="a.py", line=1, col=0, rule="z", message="m")
        late = Finding(path="a.py", line=9, col=0, rule="a", message="m")
        other = Finding(path="b.py", line=1, col=0, rule="a", message="m")
        assert sorted([other, late, early]) == [early, late, other]

    def test_base_rule_check_is_abstract(self) -> None:
        with pytest.raises(NotImplementedError):
            list(Rule().check(ModuleInfo.parse(Path("f.py"), "x = 1\n")))

    def test_module_info_exposes_tree(self) -> None:
        info = ModuleInfo.parse(Path("f.py"), "x = 1\n")
        assert isinstance(info.tree, ast.Module)
