"""Rule behavior pinned against the committed fixture corpus.

Every ``*_violation.py`` fixture marks each bad line with a trailing
``# VIOLATION: <rule-id>`` comment; the tests assert the analyzer reports
*exactly* that set of ``(line, rule)`` pairs — no misses, no extras — so
the corpus and the rules cannot drift apart silently.  ``*_clean.py``
fixtures must produce zero findings.

Plain pytest only (no hypothesis): see tests/analysis/test_analysis_engine.py.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, analyze_source

FIXTURES = Path(__file__).parent / "fixtures"

_MARKER_RE = re.compile(r"#\s*VIOLATION:\s*([a-z][a-z0-9-]*)")

VIOLATION_FIXTURES = sorted(FIXTURES.glob("*_violation.py")) + [
    FIXTURES / "suppressed.py"
]
CLEAN_FIXTURES = sorted(FIXTURES.glob("*_clean.py"))


def expected_markers(path: Path) -> set:
    """The ``(line, rule)`` pairs a fixture declares inline."""
    markers = set()
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for rule in _MARKER_RE.findall(line):
            markers.add((number, rule))
    return markers


def test_corpus_is_complete() -> None:
    # One violation + one clean fixture per rule family member, plus the
    # suppression fixture; a new rule must add its pair here.
    assert len(VIOLATION_FIXTURES) == 8
    assert len(CLEAN_FIXTURES) == 7


@pytest.mark.parametrize(
    "fixture", VIOLATION_FIXTURES, ids=lambda path: path.stem
)
def test_violation_fixture_findings_match_markers(fixture: Path) -> None:
    expected = expected_markers(fixture)
    assert expected, f"{fixture.name} declares no VIOLATION markers"
    found = {(f.line, f.rule) for f in analyze_paths([fixture])}
    assert found == expected


@pytest.mark.parametrize("fixture", CLEAN_FIXTURES, ids=lambda path: path.stem)
def test_clean_fixture_has_no_findings(fixture: Path) -> None:
    assert analyze_paths([fixture]) == []


def test_whole_corpus_finding_count() -> None:
    expected = sum(len(expected_markers(f)) for f in VIOLATION_FIXTURES)
    findings = analyze_paths([FIXTURES])
    assert len(findings) == expected


class TestLockRuleEdges:
    def test_module_level_with_lock_ignored(self) -> None:
        # The lock rules are class-scoped; module-level locks are out of
        # the `self.<lock>` discipline entirely.
        source = (
            "import threading\n"
            "LOCK = threading.Lock()\n"
            "with LOCK:\n"
            "    import time\n"
            "    time.sleep(1)\n"
        )
        assert analyze_source(source, path="m.py") == []

    def test_condition_counts_as_lock(self) -> None:
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._cv = threading.Condition()\n"
            "    def wake(self):\n"
            "        import time\n"
            "        with self._cv:\n"
            "            time.sleep(0.1)\n"
        )
        found = analyze_source(source, path="m.py")
        assert [f.rule for f in found] == ["lock-blocking-call"]

    def test_nested_with_keeps_lock_context(self) -> None:
        source = (
            "import threading, time\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def run(self, ctx):\n"
            "        with self._lock:\n"
            "            with ctx:\n"
            "                time.sleep(0.1)\n"
        )
        found = analyze_source(source, path="m.py")
        assert [f.rule for f in found] == ["lock-blocking-call"]


class TestScopeEdges:
    def test_determinism_rules_ignore_out_of_scope_modules(self) -> None:
        # Same source as a violation fixture, but no module pragma and a
        # path outside src/: the daemon may read clocks freely.
        source = "import time\n\nNOW = time.time()\n"
        assert analyze_source(source, path="/tmp/daemon_helper.py") == []

    def test_endian_rule_scoped_to_storage_and_serving(self) -> None:
        source = "import struct\nRAW = struct.pack('Q', 1)\n"
        assert analyze_source(source, path="/tmp/loose.py") == []
        scoped = "# repro: module(repro.storage.blocks)\n" + source
        found = analyze_source(scoped, path="/tmp/loose.py")
        assert [f.rule for f in found] == ["explicit-endian"]

    def test_write_path_rule_exempts_storage_implementation(self) -> None:
        # repro.storage.artifact IS the tmp+replace+fsync implementation;
        # the rule polices the serving layer above it.
        source = (
            "# repro: module(repro.storage.artifact)\n"
            "import os\n"
            "def publish(tmp, final):\n"
            "    os.replace(tmp, final)\n"
        )
        assert analyze_source(source, path="/tmp/loose.py") == []
