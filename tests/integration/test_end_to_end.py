"""End-to-end integration tests on the shared toy world.

These tests exercise the whole stack — simulation, search engine, click
logs, the miner, the dictionary and the online matcher — and assert the
qualitative outcomes the paper claims, without pinning exact numbers.
"""

import pytest

from repro.core.config import MinerConfig
from repro.core.pipeline import SynonymMiner
from repro.eval.labeling import GroundTruthOracle
from repro.eval.metrics import coverage_increase, precision, weighted_precision
from repro.matching.dictionary import SynonymDictionary
from repro.matching.matcher import QueryMatcher
from repro.storage.sqlite_store import LogDatabase


@pytest.fixture(scope="module")
def mined(toy_world):
    miner = SynonymMiner(
        click_log=toy_world.click_log,
        search_log=toy_world.search_log,
        config=MinerConfig.paper_default(),
    )
    return miner, miner.mine(toy_world.canonical_queries())


@pytest.fixture(scope="module")
def oracle(toy_world):
    return GroundTruthOracle(toy_world.catalog, toy_world.alias_table)


class TestMiningQuality:
    def test_most_entities_get_synonyms(self, mined):
        _miner, result = mined
        assert result.hit_ratio() > 0.8

    def test_precision_well_above_chance(self, mined, oracle):
        _miner, result = mined
        assert precision(result, oracle) > 0.5

    def test_weighted_precision_higher_than_unweighted(self, mined, oracle, toy_world):
        _miner, result = mined
        unweighted = precision(result, oracle)
        weighted = weighted_precision(result, oracle, toy_world.click_log)
        # Popular aliases are easier, so frequency weighting should help.
        assert weighted >= unweighted - 0.05

    def test_coverage_more_than_doubles(self, mined, toy_world):
        _miner, result = mined
        assert coverage_increase(result, toy_world.click_log) > 1.0

    def test_known_aliases_recovered(self, mined, oracle, toy_world):
        _miner, result = mined
        recovered = 0
        total = 0
        for entity in toy_world.catalog:
            truth = toy_world.alias_table.synonyms_of(entity.entity_id)
            found = set(result[entity.normalized_name].synonyms)
            overlap = truth & found
            total += 1
            if overlap:
                recovered += 1
        assert recovered / total > 0.8

    def test_expansion_ratio_substantial(self, mined):
        _miner, result = mined
        assert result.expansion_ratio() > 2.0


class TestPersistenceIntegration:
    def test_mine_store_reload_and_rematch(self, mined, toy_world, tmp_path):
        miner, result = mined
        path = tmp_path / "synonyms.db"
        with LogDatabase(path) as database:
            miner.store(result, database)
        with LogDatabase(path) as database:
            stored = list(database.iter_synonyms())
        assert len(stored) == result.synonym_count


class TestOnlineMatchingIntegration:
    def test_expanded_dictionary_improves_live_query_coverage(self, mined, toy_world):
        _miner, result = mined
        expanded = SynonymDictionary.from_mining_result(result, toy_world.catalog)
        canonical_only = SynonymDictionary.from_catalog(toy_world.catalog)

        # Live queries: what the simulated users actually typed (true
        # synonyms plus noise), excluding the canonical strings themselves.
        live_queries = [
            spec.query
            for spec in toy_world.population
            if spec.kind in ("synonym", "aspect", "noise")
        ]
        expanded_coverage = QueryMatcher(expanded, enable_fuzzy=False).coverage(live_queries)
        baseline_coverage = QueryMatcher(canonical_only, enable_fuzzy=False).coverage(live_queries)
        assert expanded_coverage > baseline_coverage

    def test_matched_entities_are_the_right_ones(self, mined, toy_world, oracle):
        _miner, result = mined
        dictionary = SynonymDictionary.from_mining_result(result, toy_world.catalog)
        matcher = QueryMatcher(dictionary, enable_fuzzy=False)
        correct = 0
        checked = 0
        for entity in toy_world.catalog:
            for alias in toy_world.alias_table.synonyms_of(entity.entity_id):
                match = matcher.match(alias)
                if not match.matched:
                    continue
                checked += 1
                if entity.entity_id in match.entity_ids:
                    correct += 1
        assert checked > 10
        assert correct / checked > 0.9
