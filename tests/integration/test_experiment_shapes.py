"""Integration tests asserting the qualitative shapes of the paper's results.

The reproduction cannot match the paper's absolute numbers (the substrate is
a simulator, not Bing's logs), but the *shapes* — who wins, which direction
each threshold moves precision and coverage — must hold.  These tests encode
those shapes for the toy world, which is built with the same generators as
the paper-scale presets.
"""

import pytest

from repro.baselines.randomwalk import RandomWalkSynonymFinder
from repro.baselines.stringsim import StringSimilaritySynonymFinder
from repro.baselines.wikipedia import WikipediaSynonymFinder
from repro.core.config import MinerConfig
from repro.core.pipeline import SynonymMiner
from repro.eval.experiments import run_icr_sweep, run_ipc_sweep, run_table1
from repro.eval.labeling import GroundTruthOracle
from repro.eval.metrics import precision


@pytest.fixture(scope="module")
def oracle(toy_world):
    return GroundTruthOracle(toy_world.catalog, toy_world.alias_table)


class TestFigure2Shape:
    """Figure 2: raising the IPC threshold trades coverage for precision."""

    @pytest.fixture(scope="class")
    def sweep(self, toy_world):
        return run_ipc_sweep(toy_world, ipc_values=(2, 4, 6, 8, 10))

    def test_precision_is_higher_at_high_ipc(self, sweep):
        assert sweep.points[-1].precision > sweep.points[0].precision

    def test_coverage_is_lower_at_high_ipc(self, sweep):
        assert sweep.points[-1].coverage_increase < sweep.points[0].coverage_increase

    def test_even_strict_threshold_keeps_some_coverage(self, sweep):
        # The paper highlights that even at IPC 10 coverage more than doubles;
        # on the toy world we only require the moderate settings to do so.
        moderate = next(point for point in sweep.points if point.ipc_threshold == 4)
        assert moderate.coverage_increase > 1.0


class TestFigure3Shape:
    """Figure 3: raising ICR raises weighted precision at any fixed IPC."""

    @pytest.fixture(scope="class")
    def sweep(self, toy_world):
        return run_icr_sweep(toy_world, ipc_values=(2, 4, 6), icr_values=(0.01, 0.4, 0.9))

    def test_weighted_precision_rises_with_icr(self, sweep):
        for curve in sweep.curves.values():
            assert curve[-1].weighted_precision >= curve[0].weighted_precision

    def test_coverage_falls_with_icr(self, sweep):
        for curve in sweep.curves.values():
            assert curve[-1].coverage_increase <= curve[0].coverage_increase

    def test_higher_ipc_starts_at_higher_precision(self, sweep):
        start_precision = {ipc: curve[0].weighted_precision for ipc, curve in sweep.curves.items()}
        assert start_precision[6] >= start_precision[2]


class TestTable1Shape:
    """Table I: the mined synonyms beat both baselines on expansion."""

    @pytest.fixture(scope="class")
    def table(self, toy_world):
        return run_table1([toy_world])

    def test_us_has_highest_expansion(self, table, toy_world):
        dataset = toy_world.config.dataset
        us = table.row(dataset, "Us")
        wiki = table.row(dataset, "Wiki")
        walk = table.row(dataset, "Walk(0.8)")
        assert us.expansion_ratio >= wiki.expansion_ratio
        assert us.expansion_ratio >= walk.expansion_ratio

    def test_us_hit_ratio_at_least_wikipedias(self, table, toy_world):
        dataset = toy_world.config.dataset
        assert table.row(dataset, "Us").hit_ratio >= table.row(dataset, "Wiki").hit_ratio


class TestBaselineWeaknesses:
    """The qualitative failure modes the paper attributes to each baseline."""

    def test_walk_needs_the_canonical_query(self, toy_world):
        finder = RandomWalkSynonymFinder(toy_world.click_graph)
        entry = finder.find_one("a canonical string nobody ever typed")
        assert not entry.has_synonyms

    def test_wikipedia_limited_by_coverage(self, toy_world):
        finder = WikipediaSynonymFinder(toy_world.wikipedia, toy_world.catalog)
        result = finder.find(toy_world.canonical_queries())
        assert result.hit_count <= toy_world.wikipedia.article_count

    def test_string_similarity_misses_nickname_synonyms(self, toy_world, oracle):
        # Nickname forms ("marky 3") share few tokens with the long canonical
        # title, so the surface baseline recovers fewer true synonyms than
        # the click-log miner.
        miner = SynonymMiner(
            click_log=toy_world.click_log,
            search_log=toy_world.search_log,
            config=MinerConfig.paper_default(),
        )
        queries = toy_world.canonical_queries()
        ours = miner.mine(queries)
        surface = StringSimilaritySynonymFinder(toy_world.click_log).find(queries)

        def true_synonyms_found(result):
            found = 0
            for entry in result:
                for candidate in entry.selected:
                    if oracle.is_true_synonym(candidate.query, entry.canonical):
                        found += 1
            return found

        assert true_synonyms_found(ours) > true_synonyms_found(surface)

    def test_our_precision_reasonable_at_paper_operating_point(self, toy_world, oracle):
        miner = SynonymMiner(
            click_log=toy_world.click_log,
            search_log=toy_world.search_log,
            config=MinerConfig.paper_default(),
        )
        result = miner.mine(toy_world.canonical_queries())
        assert precision(result, oracle) > 0.5
