"""Setuptools shim.

The canonical build configuration lives in pyproject.toml; this file exists
so that environments without the `wheel` package (where PEP 517 editable
installs are unavailable) can still do a legacy editable install:

    pip install -e . --no-use-pep517 --no-build-isolation
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    zip_safe=False,
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={
        "dev": [
            "mypy==1.15.0",
            "ruff==0.9.6",
            "pytest>=8.0",
            "pytest-benchmark>=4.0",
            "hypothesis>=6.98",
        ]
    },
)
